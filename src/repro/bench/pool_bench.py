"""Reproducible perf-regression harness: problem x executor x P sweep.

The pool-suite matrix runner behind ``benchmarks/bench_runner.py`` (a
thin path-bootstrap shim) and ``repro bench record --suite pool``.  It
times real ``solve_parallel`` wall-clock on a small grid of synthetic
instances and emits a schema-versioned ``BENCH_pool.json``::

    PYTHONPATH=src python benchmarks/bench_runner.py --smoke
    PYTHONPATH=src python benchmarks/bench_runner.py            # full grid
    PYTHONPATH=src python benchmarks/bench_runner.py --check BENCH_pool.json

When a previous ``--out`` document exists, the runner compares against
it cell by cell and flags regressions.  The baseline is only replaced
when the run *passes*: a regressed (or failed-check, or cross-mode) run
writes its document to a ``*.failed.json`` sidecar instead, so a
regression can never launder itself into the next run's baseline.
Re-baselining after an accepted slowdown is an explicit act
(``--update-baseline``).

Besides the timing grid, the runner asserts two observability
guarantees of the tracing layer (recorded under ``"checks"``):

- ``tracing_disabled_overhead`` — a pool solve with tracing disabled
  (either ``tracer=None`` or a ``Tracer(enabled=False)``) stays within
  5% of the untraced baseline (best-of-N floors, which damp scheduler
  noise the way min-based microbenchmarks do);
- ``trace_coverage`` — an *enabled* trace of a pool solve carries
  exactly one ``superstep`` span per recorded superstep, and every
  ``dispatch`` span has the per-worker send/queue-wait/compute
  breakdown plus serialized byte counts;
- ``delta_fixup_reduction`` — on the sparse-kernel problems (LCS, NW)
  the §4.7 delta-mode fix-up must touch no more cells than dense mode
  on any grid cell, and strictly fewer on at least one;
- ``runner_scaling`` — 1-runner vs 4-runner pool solves of the Viterbi
  and NW rows: wall clocks are recorded for trend-watching, and the
  check passes iff the results are bit-identical (runner count must be
  invisible in path, score and the metrics ledger);
- ``kernel_tier_speedup`` — the block-kernel fast path
  (``ParallelOptions(use_kernels=True)``) on the scaled ``viterbi_xl``
  and ``nw_xl`` pool rows must be bit-identical to the dense tier-off
  solve and at least ``KERNEL_TIER_SPEEDUP_*`` times faster in
  cells/sec.  The classic grid rows pin ``use_kernels=False`` so their
  timings stay comparable with pre-kernel baselines.

Every result row carries ``"valid"``: a row whose best-of-N floor is
not strictly positive (a broken clock, a sub-resolution measurement)
gets ``valid: false`` and ``cells_per_second: 0.0`` instead of a
silently wrong throughput, and the cell-by-cell comparison skips such
rows loudly rather than dividing by their wall clock.

Timings are floors (min over ``--repeats``); medians are also recorded.
The grid is deliberately small — this is a regression tripwire, not the
paper evaluation (that is ``pytest benchmarks/ --benchmark-only``).
The longitudinal view over many recorded runs lives in
:mod:`repro.bench.history` / :mod:`repro.bench.trend` (``repro bench``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

import numpy as np

from repro.bench.matrix import (
    REGRESSION_RATIO,
    BenchDocumentError,
    GridCell,
    compare_documents,
    find_duplicate_cells,
    load_json_document,
    make_document,
    need,
    print_comparison,
    throughput_cells_per_second,
)
from repro.datagen.packets import make_received_packet
from repro.datagen.sequences import homologous_pair, random_series
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.machine.executor import get_executor
from repro.machine.trace import Tracer
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.convolutional import STANDARD_CODES
from repro.problems.dtw import DTWProblem

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_OUT",
    "build_problem",
    "compare_documents",
    "failed_sidecar",
    "finalize_run",
    "main",
    "run_bench",
    "run_suite",
    "throughput_cells_per_second",
    "validate_bench_doc",
]

#: Bump on any incompatible change to the emitted JSON document.
BENCH_SCHEMA_VERSION = 1

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]

DEFAULT_OUT = _REPO_ROOT / "BENCH_pool.json"

#: Acceptance bound for the disabled-tracer overhead check.
OVERHEAD_RATIO = 1.05

#: Minimum cells/sec speedup of the block-kernel tier over the dense
#: per-stage path on the scaled pool rows.  The full-grid instances are
#: big enough to amortize dispatch, so 10x is the contract; the smoke
#: instances are dominated by fixed costs and only have to show 2x.
KERNEL_TIER_SPEEDUP_FULL = 10.0
KERNEL_TIER_SPEEDUP_SMOKE = 2.0

#: Problems with a registered stage-block kernel, at sizes where raw
#: sweep speed dominates (see ``build_problem``).
KERNEL_TIER_PROBLEMS = ("viterbi_xl", "nw_xl")

SEED = 2014  # PPoPP year; fixed so instances are bit-reproducible.


def build_problem(name: str, smoke: bool):
    """Synthetic instance for one grid row (seeded, reproducible)."""
    rng = np.random.default_rng(SEED)
    if name == "lcs":
        size = 120 if smoke else 600
        a, b = homologous_pair(size, rng, divergence=0.1)
        return LCSProblem(a, b, width=24)
    if name == "nw":
        size = 120 if smoke else 600
        a, b = homologous_pair(size, rng, divergence=0.1)
        return NeedlemanWunschProblem(a, b, width=24)
    if name == "viterbi":
        size = 60 if smoke else 240
        _, problem = make_received_packet(
            STANDARD_CODES["Voyager"], size, rng, error_rate=0.02
        )
        return problem
    if name == "viterbi_xl":
        # Kernel-tier row: big enough that per-stage dispatch overhead
        # is amortized and the block kernel's raw speed dominates.  The
        # full size is sized so the forward sweep, not the O(n)
        # traceback + accounting shared by both tiers, dominates the
        # dense wall time (speedup plateaus ~11-12x from ~8k stages).
        size = 960 if smoke else 15360
        _, problem = make_received_packet(
            STANDARD_CODES["Voyager"], size, rng, error_rate=0.02
        )
        return problem
    if name == "nw_xl":
        # Same sizing rationale as viterbi_xl: past ~5k stages the
        # banded block kernel dominates and the speedup plateaus ~12x.
        size = 600 if smoke else 9600
        a, b = homologous_pair(size, rng, divergence=0.1)
        return NeedlemanWunschProblem(a, b, width=24)
    if name == "dtw":
        size = 100 if smoke else 400
        return DTWProblem(random_series(size, rng), random_series(size, rng), width=16)
    raise ValueError(f"unknown benchmark problem {name!r}")


#: Problems benchmarked in both dense and §4.7 delta fix-up mode — the
#: two with a sparse stage kernel, where delta mode changes the cells
#: actually computed (not just the accounting).
DELTA_PROBLEMS = ("lcs", "nw")


def _grid(smoke: bool) -> list[GridCell]:
    """Classic cells of the five-axis matrix (kernel tier pinned off)."""
    problems = ("lcs", "nw", "viterbi") if smoke else ("lcs", "nw", "viterbi", "dtw")
    procs = (2, 4) if smoke else (2, 4, 8)
    return [
        GridCell(problem, executor, p, use_delta=use_delta)
        for problem in problems
        for executor in ("serial", "thread", "pool")
        for p in procs
        for use_delta in ((False, True) if problem in DELTA_PROBLEMS else (False,))
    ]


def _timed_solve(problem, executor, procs: int, tracer=None, use_delta=False,
                 use_kernels: bool | None = False):
    # ``use_kernels`` defaults to *False* (not auto): the classic grid
    # rows must keep timing the dense per-stage path so their floors
    # stay comparable with BENCH_pool.json files written before the
    # kernel tier existed.  The kernel-tier rows opt in explicitly.
    t0 = time.perf_counter()
    solution = solve_parallel(
        problem,
        ParallelOptions(
            num_procs=procs,
            seed=SEED,
            executor=executor,
            tracer=tracer,
            use_delta=use_delta,
            use_kernels=use_kernels,
        ),
    )
    return time.perf_counter() - t0, solution


def _measure(problem, executor, procs: int, repeats: int, tracer=None, use_delta=False,
             use_kernels: bool | None = False):
    """Best-of-N floor + median; returns (times, last_solution)."""
    times = []
    solution = None
    for _ in range(repeats):
        elapsed, solution = _timed_solve(
            problem, executor, procs, tracer, use_delta, use_kernels
        )
        times.append(elapsed)
    return times, solution


def _fixup_cells(metrics) -> float:
    """Cells actually computed across forward fix-up supersteps."""
    return float(
        sum(
            s.total_work
            for s in metrics.supersteps
            if s.label.startswith("fixup")
        )
    )


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------


def _result_row(cell: GridCell, repeats: int, times: list[float], solution) -> dict:
    m = solution.metrics
    cells = float(m.total_work)
    best = min(times)
    cps, valid = throughput_cells_per_second(cells, best)
    if not valid:
        print(
            f"  WARNING: {cell.problem}/{cell.executor}/P={cell.procs} measured a "
            f"non-positive floor ({best!r}); row marked invalid"
        )
    return {
        "problem": cell.problem,
        "executor": cell.executor,
        "procs": cell.procs,
        "use_delta": cell.use_delta,
        "repeats": repeats,
        "wall_seconds": best,
        "wall_seconds_median": statistics.median(times),
        "supersteps": len(m.supersteps),
        "num_barriers": m.num_barriers,
        "forward_fixup_iterations": m.forward_fixup_iterations,
        "bytes_communicated": int(m.bytes_communicated),
        "total_work_cells": cells,
        "fixup_cells": _fixup_cells(m),
        "cells_per_second": cps,
        "valid": valid,
    }


def _run_grid(smoke: bool, repeats: int) -> list[dict]:
    results = []
    for cell in _grid(smoke):
        problem = build_problem(cell.problem, smoke)
        with get_executor(cell.executor) as executor:
            times, solution = _measure(
                problem, executor, cell.procs, repeats, use_delta=cell.use_delta
            )
        results.append(_result_row(cell, repeats, times, solution))
        row = results[-1]
        mode_tag = "delta" if cell.use_delta else "dense"
        print(
            f"  {cell.problem:<8s} {cell.executor:<7s} P={cell.procs:<2d} "
            f"{mode_tag:<5s} best {row['wall_seconds'] * 1e3:8.2f} ms  "
            f"({row['supersteps']} supersteps, "
            f"{row['forward_fixup_iterations']} fixups, "
            f"{row['fixup_cells']:.0f} fixup cells)"
        )
    return results


def _check_delta_fixup_reduction(results: list[dict]) -> dict:
    """§4.7 acceptance: on the sparse-kernel problems, delta-mode fix-up
    must never touch more cells than dense mode on the same cell of the
    grid, and must touch strictly fewer wherever fix-up work exists."""
    pairs = []
    dense = {
        (r["problem"], r["executor"], r["procs"]): r
        for r in results
        if not r.get("use_delta", False)
    }
    for row in results:
        if not row.get("use_delta", False):
            continue
        base = dense.get((row["problem"], row["executor"], row["procs"]))
        if base is None:
            continue
        pairs.append(
            {
                "problem": row["problem"],
                "executor": row["executor"],
                "procs": row["procs"],
                "dense_fixup_cells": base["fixup_cells"],
                "delta_fixup_cells": row["fixup_cells"],
            }
        )
    never_worse = all(
        p["delta_fixup_cells"] <= p["dense_fixup_cells"] for p in pairs
    )
    strictly_better = [
        p for p in pairs if p["delta_fixup_cells"] < p["dense_fixup_cells"]
    ]
    return {
        "pairs": pairs,
        "never_worse": never_worse,
        "strictly_better_cells": len(strictly_better),
        "passed": bool(pairs) and never_worse and bool(strictly_better),
    }


def _check_runner_scaling(smoke: bool, repeats: int) -> dict:
    """Runner-crew cell: 1-runner vs N-runner wall clock on the pool.

    ``passed`` gates on *bit-identity* (path + score + fix-up schedule
    must not notice the runner count), never on the speed ratio — on a
    loaded single-core CI container concurrent runners may well be
    slower; the ratio is recorded for trend-watching only.
    """
    runner_counts = (1, 4)
    rows = []
    identical = True
    for problem_name in ("viterbi", "nw"):
        problem = build_problem(problem_name, smoke)
        per_count: dict[int, dict] = {}
        with get_executor("pool") as executor:
            _timed_solve(problem, executor, 4)  # warm the workers
            for runners in runner_counts:
                times = []
                solution = None
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    solution = solve_parallel(
                        problem,
                        ParallelOptions(
                            num_procs=4,
                            seed=SEED,
                            executor=executor,
                            runners=runners,
                        ),
                    )
                    times.append(time.perf_counter() - t0)
                per_count[runners] = {
                    "wall_seconds": min(times),
                    "solution": solution,
                }
        base = per_count[runner_counts[0]]["solution"]
        multi = per_count[runner_counts[-1]]["solution"]
        cell_identical = bool(
            np.array_equal(base.path, multi.path)
            and base.score == multi.score
            and base.metrics.forward_fixup_iterations
            == multi.metrics.forward_fixup_iterations
            and base.metrics.work_by_processor()
            == multi.metrics.work_by_processor()
            and base.metrics.bytes_communicated
            == multi.metrics.bytes_communicated
        )
        identical &= cell_identical
        rows.append(
            {
                "problem": problem_name,
                "procs": 4,
                "runners_1_seconds": per_count[runner_counts[0]]["wall_seconds"],
                "runners_n_seconds": per_count[runner_counts[-1]]["wall_seconds"],
                "runners_n": runner_counts[-1],
                "ratio": (
                    per_count[runner_counts[-1]]["wall_seconds"]
                    / per_count[runner_counts[0]]["wall_seconds"]
                ),
                "bit_identical": cell_identical,
            }
        )
    return {"rows": rows, "passed": bool(rows) and identical}


def _run_kernel_tier(smoke: bool, repeats: int) -> tuple[list[dict], dict]:
    """Kernel-tier rows (``kernel_tier: true/false`` at identical sizes)
    plus the ``kernel_tier_speedup`` check.

    For each scaled problem the pool solves once with the block-kernel
    tier off and once with it on.  The check passes iff every pair is
    bit-identical (path, score, fix-up schedule, per-processor work
    ledger — the tier must be invisible in everything but the clock)
    AND the tier-on row is at least ``threshold`` times faster in
    cells/sec.  Both rows land in ``results`` so future runs regression-
    gate the kernel path like any other cell.
    """
    threshold = KERNEL_TIER_SPEEDUP_SMOKE if smoke else KERNEL_TIER_SPEEDUP_FULL
    procs = 2
    rows: list[dict] = []
    pairs: list[dict] = []
    identical = True
    fast_enough = True
    for problem_name in KERNEL_TIER_PROBLEMS:
        problem = build_problem(problem_name, smoke)
        per_mode: dict[bool, tuple[list[float], object]] = {}
        with get_executor("pool") as executor:
            # Warm workers, the problem install, and the kernel plan
            # cache so neither mode pays one-time costs in its floor.
            _timed_solve(problem, executor, procs, use_kernels=True)
            for use_kernels in (False, True):
                per_mode[use_kernels] = _measure(
                    problem, executor, procs, repeats, use_kernels=use_kernels
                )
        cps_by_mode: dict[bool, tuple[float, bool]] = {}
        for use_kernels in (False, True):
            times, solution = per_mode[use_kernels]
            cell = GridCell(problem_name, "pool", procs, kernel_tier=use_kernels)
            row = _result_row(cell, repeats, times, solution)
            row["kernel_tier"] = use_kernels
            cps_by_mode[use_kernels] = (row["cells_per_second"], row["valid"])
            rows.append(row)
            tier_tag = "tier-on" if use_kernels else "tier-off"
            print(
                f"  {problem_name:<10s} pool    P={procs:<2d} {tier_tag:<8s} "
                f"best {row['wall_seconds'] * 1e3:8.2f} ms  "
                f"{row['cells_per_second'] / 1e6:8.2f} Mcells/s"
            )
        off, on = per_mode[False][1], per_mode[True][1]
        cell_identical = bool(
            np.array_equal(off.path, on.path)
            and off.score == on.score
            and off.metrics.forward_fixup_iterations
            == on.metrics.forward_fixup_iterations
            and off.metrics.work_by_processor() == on.metrics.work_by_processor()
        )
        identical &= cell_identical
        (cps_off, valid_off), (cps_on, valid_on) = cps_by_mode[False], cps_by_mode[True]
        speedup = cps_on / cps_off if (valid_off and valid_on and cps_off > 0) else 0.0
        fast_enough &= valid_off and valid_on and speedup >= threshold
        pairs.append(
            {
                "problem": problem_name,
                "procs": procs,
                "cells_per_second_off": cps_off,
                "cells_per_second_on": cps_on,
                "speedup": speedup,
                "bit_identical": cell_identical,
            }
        )
        print(
            f"  {problem_name:<10s} kernel-tier speedup x{speedup:.2f} "
            f"(threshold x{threshold:.0f}, "
            f"bit-identical: {'yes' if cell_identical else 'NO'})"
        )
    check = {
        "rows": pairs,
        "threshold": threshold,
        "bit_identical": identical,
        "passed": bool(pairs) and identical and fast_enough,
    }
    return rows, check


# ----------------------------------------------------------------------
# Tracing checks (acceptance criteria of the observability layer)
# ----------------------------------------------------------------------


def _check_disabled_overhead(smoke: bool, repeats: int) -> dict:
    """Disabled tracing must stay within OVERHEAD_RATIO of untraced.

    The two floors are milliseconds apart in magnitude, so a single
    best-of-N pair on a loaded host can jitter past the 5% threshold
    with no real overhead; a first failure re-measures once with twice
    the repeats before the check is declared failed.  A disabled tracer
    that *records* anything fails immediately — that is a contract
    violation, not noise.
    """
    problem = build_problem("lcs", smoke)
    procs = 4
    check: dict = {}
    for attempt, n in enumerate((repeats, repeats * 2), start=1):
        off = Tracer(enabled=False)
        base_times: list[float] = []
        off_times: list[float] = []
        with get_executor("pool") as executor:
            # Warm-up removes worker-spawn cost; interleaving the two
            # variants makes the floor comparison robust to load that
            # drifts over the measurement window.
            _timed_solve(problem, executor, procs)
            for _ in range(n):
                elapsed, _ = _timed_solve(problem, executor, procs)
                base_times.append(elapsed)
                elapsed, _ = _timed_solve(problem, executor, procs, tracer=off)
                off_times.append(elapsed)
        base, disabled = min(base_times), min(off_times)
        ratio = disabled / base if base > 0 else 1.0
        check = {
            "baseline_seconds": base,
            "disabled_tracer_seconds": disabled,
            "ratio": ratio,
            "threshold": OVERHEAD_RATIO,
            "passed": ratio < OVERHEAD_RATIO,
            "spans_recorded": len(off.spans) + len(off.events),
            "attempts": attempt,
        }
        if off.spans or off.events:
            check["passed"] = False  # a disabled tracer must record nothing
            break
        if check["passed"]:
            break
    return check


def _check_trace_coverage(smoke: bool, trace_path: str | None) -> dict:
    """An enabled pool trace must cover every superstep and dispatch."""
    problem = build_problem("lcs", smoke)
    tracer = Tracer()
    with get_executor("pool") as executor:
        _, solution = _timed_solve(problem, executor, 4, tracer=tracer)
    superstep_spans = [s for s in tracer.spans if s.name == "superstep"]
    dispatch_spans = [s for s in tracer.spans if s.name == "dispatch"]
    breakdown_keys = (
        "worker",
        "send_seconds",
        "queue_wait_seconds",
        "compute_seconds",
        "request_bytes",
        "reply_bytes",
    )
    complete = all(
        all(k in s.attrs for k in breakdown_keys) for s in dispatch_spans
    )
    recorded = len(solution.metrics.supersteps)
    check = {
        "superstep_spans": len(superstep_spans),
        "recorded_supersteps": recorded,
        "dispatch_spans": len(dispatch_spans),
        "dispatch_breakdown_complete": complete,
        "passed": bool(
            superstep_spans
            and len(superstep_spans) == recorded
            and dispatch_spans
            and complete
        ),
    }
    if trace_path:
        tracer.dump_jsonl(trace_path)
        check["trace_path"] = trace_path
    return check


# ----------------------------------------------------------------------
# Schema validation (hand-rolled; no jsonschema dependency)
# ----------------------------------------------------------------------

_RESULT_FIELDS = {
    "problem": str,
    "executor": str,
    "procs": int,
    "repeats": int,
    "wall_seconds": float,
    "wall_seconds_median": float,
    "supersteps": int,
    "num_barriers": int,
    "forward_fixup_iterations": int,
    "bytes_communicated": int,
    "total_work_cells": float,
    "cells_per_second": float,
}


def validate_bench_doc(doc, *, check_duplicates: bool = False) -> None:
    """Raise ``ValueError`` unless ``doc`` matches the BENCH_pool schema.

    ``check_duplicates`` additionally rejects result grids where two
    rows share a cell key (``repro bench check`` and ``--check`` turn
    this on; the in-band comparison path surfaces duplicates through
    ``compare_documents`` instead so they reach the report).
    """
    if not isinstance(doc, dict):
        raise ValueError(f"document must be an object, got {type(doc).__name__}")
    version = need(doc, "schema_version", int, "document")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {version} != supported {BENCH_SCHEMA_VERSION}"
        )
    need(doc, "kind", str, "document")
    if doc["kind"] != "repro-bench":
        raise ValueError(f"kind {doc['kind']!r} != 'repro-bench'")
    need(doc, "mode", str, "document")
    need(doc, "host", dict, "document")
    results = need(doc, "results", list, "document")
    if not results:
        raise ValueError("document: 'results' must be non-empty")
    for idx, row in enumerate(results):
        where = f"results[{idx}]"
        if not isinstance(row, dict):
            raise ValueError(f"{where}: must be an object")
        for key, typ in _RESULT_FIELDS.items():
            types = (int, float) if typ is float else typ
            need(row, key, types, where)
        # Optional fields (schema v1 compatible: absent in older docs).
        if "valid" in row and not isinstance(row["valid"], bool):
            raise ValueError(f"{where}: valid must be a bool")
        if row.get("valid", True) and row["wall_seconds"] <= 0:
            raise ValueError(
                f"{where}: wall_seconds must be positive on a valid row"
            )
        if "use_delta" in row and not isinstance(row["use_delta"], bool):
            raise ValueError(f"{where}: use_delta must be a bool")
        if "kernel_tier" in row and not isinstance(row["kernel_tier"], bool):
            raise ValueError(f"{where}: kernel_tier must be a bool")
        if "fixup_cells" in row and not isinstance(row["fixup_cells"], (int, float)):
            raise ValueError(f"{where}: fixup_cells must be numeric")
    checks = need(doc, "checks", dict, "document")
    for name, check in checks.items():
        if not isinstance(check, dict) or "passed" not in check:
            raise ValueError(f"checks[{name!r}]: must be an object with 'passed'")
    if check_duplicates:
        duplicates = find_duplicate_cells(results)
        if duplicates:
            detail = "; ".join(
                f"{d['problem']}/{d['executor']}/P={d['procs']} "
                f"use_delta={d['use_delta']} kernel_tier={d['kernel_tier']} "
                f"x{d['count']}"
                for d in duplicates
            )
            raise ValueError(
                f"document: {len(duplicates)} duplicate result cell(s): {detail}"
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_suite(smoke: bool, repeats: int, trace_path: str | None = None) -> tuple[dict, bool]:
    """Run the sweep + checks; returns ``(document, checks_ok)``.

    No comparison, no file I/O — callers (``run_bench``, ``repro bench
    record``) decide how the document meets the baseline and history.
    """
    mode = "smoke" if smoke else "full"
    print(f"bench runner: mode={mode} repeats={repeats}")
    results = _run_grid(smoke, repeats)

    print("kernel tier:")
    tier_rows, tier_check = _run_kernel_tier(smoke, repeats)
    results.extend(tier_rows)

    print("checks:")
    checks = {
        "tracing_disabled_overhead": _check_disabled_overhead(smoke, repeats + 2),
        "trace_coverage": _check_trace_coverage(smoke, trace_path),
        "delta_fixup_reduction": _check_delta_fixup_reduction(results),
        "runner_scaling": _check_runner_scaling(smoke, repeats),
        "kernel_tier_speedup": tier_check,
    }
    for name, check in checks.items():
        print(f"  {name}: {'pass' if check['passed'] else 'FAIL'} {check}")

    doc = make_document("repro-bench", BENCH_SCHEMA_VERSION, mode, results, checks)
    return doc, all(c["passed"] for c in checks.values())


def failed_sidecar(out: pathlib.Path) -> pathlib.Path:
    """``BENCH_pool.json`` -> ``BENCH_pool.failed.json``."""
    return out.with_suffix(".failed.json")


def compare_against_baseline(doc: dict, baseline: pathlib.Path) -> int:
    """Attach + print ``doc["comparison"]`` against the file at ``baseline``.

    Returns 1 when the comparison fails (regressed cells or duplicate
    cell keys on either side), 0 otherwise.  The baseline file is only
    read, never written.
    """
    try:
        old = json.loads(baseline.read_text())
        validate_bench_doc(old)
    except (ValueError, OSError) as exc:
        print(f"previous {baseline.name} unusable ({exc}); skipping comparison")
        return 0
    doc["comparison"] = compare_documents(old, doc)
    print_comparison(doc["comparison"])
    if doc["comparison"]["regressions"] or doc["comparison"]["duplicate_cells"]:
        return 1
    return 0


def finalize_run(doc: dict, out: pathlib.Path, *, checks_ok: bool = True,
                 update_baseline: bool = False) -> int:
    """Compare against the baseline at ``out`` and decide where to write.

    The committed baseline is only replaced by a *passing* run of the
    same mode; a failing run (regression or failed check) or a
    cross-mode run writes its document to the ``*.failed.json`` sidecar
    so the next run still compares against the honest numbers.  Before
    this policy existed, a regressed run exited 1 but overwrote its own
    baseline — the very next run then compared against the regressed
    floors and passed (baseline self-laundering).  ``update_baseline``
    is the explicit re-baselining escape hatch: the document is written
    to ``out`` regardless of the verdict (the exit code still reports
    it).
    """
    exit_code = 0 if checks_ok else 1
    mode_mismatch = False
    if out.exists():
        previous_mode = None
        try:
            previous_mode = json.loads(out.read_text()).get("mode")
        except (ValueError, OSError):
            pass  # unreadable previous file; compare_against_baseline reports it
        mode_mismatch = previous_mode is not None and previous_mode != doc.get("mode")
        if compare_against_baseline(doc, out):
            exit_code = 1
    validate_bench_doc(doc)
    payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if update_baseline or (exit_code == 0 and not mode_mismatch):
        out.write_text(payload)
        print(f"wrote {out}")
    else:
        sidecar = failed_sidecar(out)
        sidecar.write_text(payload)
        reason = (
            f"mode {doc.get('mode')!r} != baseline mode"
            if mode_mismatch and exit_code == 0
            else "run failed"
        )
        print(f"baseline {out} left untouched ({reason}); wrote {sidecar}")
        print("  (re-baseline intentionally with --update-baseline)")
    return exit_code


def run_bench(
    smoke: bool,
    repeats: int,
    out: pathlib.Path,
    trace_path: str | None = None,
    *,
    update_baseline: bool = False,
) -> tuple[dict, int]:
    """Run the sweep + checks, emit a document, return (document, exit code)."""
    doc, checks_ok = run_suite(smoke, repeats, trace_path)
    exit_code = finalize_run(
        doc, out, checks_ok=checks_ok, update_baseline=update_baseline
    )
    return doc, exit_code


def check_document(path) -> int:
    """``--check``: validate an existing document, exit cleanly on junk."""
    try:
        doc = load_json_document(path)
        validate_bench_doc(doc, check_duplicates=True)
    except BenchDocumentError as exc:
        print(f"bench check failed: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"bench check failed: {path}: {exc}", file=sys.stderr)
        return 1
    print(f"{path}: valid repro-bench document (schema v{doc['schema_version']}, "
          f"{len(doc['results'])} cells, mode={doc['mode']})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances / reduced grid (CI-sized, ~seconds)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per cell"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"output document (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="replace --out even when the run regresses or changes mode "
        "(explicit re-baselining; without this a failing run only writes "
        "the *.failed.json sidecar)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="also dump the coverage check's JSONL trace here (CI artifact)",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="validate an existing document against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check_document(args.check)

    _, exit_code = run_bench(
        args.smoke,
        args.repeats,
        args.out,
        args.trace,
        update_baseline=args.update_baseline,
    )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
