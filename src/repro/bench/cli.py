"""``repro bench`` — record / compare / trend / report / check.

The longitudinal workflow on top of the suite runners:

``record``
    Run a suite (pool sweep or serving grid) and append one record —
    commit SHA, dirty flag, host fingerprint, mode, full result grid +
    check verdicts — to the append-only JSONL history.  The committed
    baseline is read-only for comparison; it is only rewritten under
    ``--update-baseline``.
``compare``
    Cell-by-cell 1.6x ratio comparison of two bench documents (the
    zero-history fallback gate, exposed standalone).
``trend``
    Per-cell rolling median/MAD verdicts over the history (see
    :mod:`repro.bench.trend`): a regression needs a sustained shift,
    not one noisy floor.
``report``
    The markdown form of ``trend`` plus a history summary (the CI
    artifact).
``check``
    Schema-validate bench documents (``*.json``) and history files
    (``*.jsonl``) — the same gate CI runs on both the committed
    baseline and the accumulated history.
"""

from __future__ import annotations

import pathlib
import sys

from repro.bench.history import (
    DEFAULT_HISTORY_NAME,
    append_record,
    load_history,
    make_history_record,
    validate_history_file,
)
from repro.bench.matrix import (
    BenchDocumentError,
    compare_documents,
    load_json_document,
    print_comparison,
)
from repro.bench.report import (
    render_markdown_report,
    render_text_report,
    render_trend_table,
    verdict_counts,
)
from repro.bench.trend import TrendPolicy, trend_report

__all__ = ["execute_bench"]


def _default_history(args) -> pathlib.Path:
    if args.history is not None:
        return pathlib.Path(args.history)
    return pathlib.Path.cwd() / DEFAULT_HISTORY_NAME


def _default_baseline(suite: str) -> pathlib.Path:
    name = "BENCH_pool.json" if suite == "pool" else "BENCH_serve.json"
    return pathlib.Path.cwd() / name


def _policy(args) -> TrendPolicy:
    return TrendPolicy(
        window=args.window,
        confirm=args.confirm,
        min_samples=args.min_samples,
        z_threshold=args.z_threshold,
        min_effect=args.min_effect,
    )


def cmd_record(args) -> int:
    from repro.bench import pool_bench, serve_bench

    smoke = args.mode == "smoke"
    if args.suite == "pool":
        doc, checks_ok = pool_bench.run_suite(smoke, args.repeats, args.trace)
    else:
        doc, checks_ok = serve_bench.run_suite(smoke)
    exit_code = 0 if checks_ok else 1

    regressions = None
    baseline = (
        pathlib.Path(args.baseline)
        if args.baseline is not None
        else _default_baseline(args.suite)
    )
    if args.suite == "pool" and baseline.exists():
        # Read-only fallback gate: the single-file 1.6x ratio.  `record`
        # never rewrites the baseline implicitly — the history is the
        # primary store and it keeps regressed runs *as data*.
        if pool_bench.compare_against_baseline(doc, baseline):
            exit_code = 1
        comparison = doc.get("comparison")
        if comparison is not None and comparison.get("comparable"):
            regressions = len(comparison["regressions"])

    history = _default_history(args)
    record = make_history_record(args.suite, doc, regressions=regressions)
    count = append_record(history, record)
    commit = record["commit"] or "(no git)"
    print(
        f"recorded {args.suite}/{doc['mode']} run as history entry #{count} "
        f"-> {history} (commit {commit}"
        + (", dirty tree" if record["dirty"] else "")
        + ")"
    )

    if args.out is not None:
        # A plain document artifact (CI uploads these); not a baseline.
        import json

        pathlib.Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}")
    if args.update_baseline:
        import json

        baseline.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"re-baselined {baseline}")
    return exit_code


def cmd_compare(args) -> int:
    from repro.bench import pool_bench

    try:
        old = load_json_document(args.old)
        new = load_json_document(args.new)
        pool_bench.validate_bench_doc(old)
        pool_bench.validate_bench_doc(new)
    except (BenchDocumentError, ValueError) as exc:
        print(f"bench compare failed: {exc}", file=sys.stderr)
        return 1
    comparison = compare_documents(old, new, ratio=args.ratio)
    print_comparison(comparison)
    if comparison["regressions"] or comparison["duplicate_cells"]:
        return 1
    return 0


def _load_history_or_fail(path):
    try:
        return load_history(path)
    except BenchDocumentError as exc:
        print(f"bench history unusable: {exc}", file=sys.stderr)
        return None


def cmd_trend(args) -> int:
    history = _default_history(args)
    load = _load_history_or_fail(history)
    if load is None:
        return 1
    cells = trend_report(load.records, _policy(args), suite=args.suite, mode=args.mode)
    if args.fmt == "markdown":
        print(render_markdown_report(load, cells))
    else:
        print(render_text_report(load, cells))
    counts = verdict_counts(cells)
    if args.strict and counts["regressions"]:
        return 1
    return 0


def cmd_report(args) -> int:
    history = _default_history(args)
    load = _load_history_or_fail(history)
    if load is None:
        return 1
    cells = trend_report(load.records, _policy(args), suite=args.suite, mode=args.mode)
    text = render_markdown_report(load, cells)
    if args.out is not None:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out} ({verdict_counts(cells)['cells']} cells)")
    else:
        print(text)
    return 0


def cmd_check(args) -> int:
    from repro.bench import pool_bench, serve_bench

    failures = 0
    for raw in args.paths:
        path = pathlib.Path(raw)
        try:
            if path.suffix == ".jsonl":
                summary = validate_history_file(path)
                note = " (torn trailing line dropped)" if summary["corrupt_tail"] else ""
                print(
                    f"{path}: valid history — {summary['records']} record(s), "
                    f"suites {summary['suites']}, "
                    f"{summary['commits']} distinct commit(s){note}"
                )
                continue
            doc = load_json_document(path)
            kind = doc.get("kind") if isinstance(doc, dict) else None
            if kind == "repro-serve-bench":
                serve_bench.validate_serve_doc(doc)
            else:
                pool_bench.validate_bench_doc(doc, check_duplicates=True)
            print(
                f"{path}: valid {kind or 'repro-bench'} document "
                f"(schema v{doc['schema_version']}, {len(doc['results'])} rows, "
                f"mode={doc['mode']})"
            )
        except (BenchDocumentError, ValueError) as exc:
            message = str(exc)
            prefix = f"{path}: "
            if message.startswith(prefix) or message.startswith(str(path) + ":"):
                print(f"bench check failed: {message}", file=sys.stderr)
            else:
                print(f"bench check failed: {path}: {message}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


_HANDLERS = {
    "record": cmd_record,
    "compare": cmd_compare,
    "trend": cmd_trend,
    "report": cmd_report,
    "check": cmd_check,
}


def execute_bench(args) -> int:
    return _HANDLERS[args.bench_command](args)
