"""Shared matrix-runner machinery for the perf suites.

Both standalone runners (``benchmarks/bench_runner.py`` for the pool
sweep, ``benchmarks/bench_serve.py`` for the serving grid) and the
``repro bench`` CLI build their documents through this module: the
five-axis cell identity (problem x executor x P x delta-mode x
kernel-tier), best-of-N floor timing helpers, the schema-versioned
document envelope, and the cell-by-cell comparison against a previous
document.

The comparison here is the *fallback* signal — a single-file ratio gate
(:data:`REGRESSION_RATIO`) that works with zero history.  The
longitudinal layer (:mod:`repro.bench.history` + :mod:`repro.bench.trend`)
keys its per-cell series with the same :func:`cell_key`, so a cell's
identity is identical in both views.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pathlib
import platform
import statistics
import time

__all__ = [
    "BenchDocumentError",
    "CELL_KEY_FIELDS",
    "GridCell",
    "REGRESSION_RATIO",
    "best_and_median",
    "cell_ident",
    "cell_key",
    "compare_documents",
    "find_duplicate_cells",
    "host_info",
    "load_json_document",
    "make_document",
    "need",
    "print_comparison",
    "throughput_cells_per_second",
]

#: A new timing must stay under ``old * REGRESSION_RATIO`` to pass the
#: single-file comparison.  Generous because these are single-core
#: container floors, but tight enough to catch an accidental
#: O(P) -> O(P^2) dispatch or a pickle blow-up.
REGRESSION_RATIO = 1.6

#: The five axes that identify one cell of the benchmark matrix.
CELL_KEY_FIELDS = ("problem", "executor", "procs", "use_delta", "kernel_tier")


class BenchDocumentError(ValueError):
    """A bench document or history file that cannot be read or parsed."""


@dataclasses.dataclass(frozen=True)
class GridCell:
    """One cell of the problem x executor x P x delta x tier matrix."""

    problem: str
    executor: str
    procs: int
    use_delta: bool = False
    kernel_tier: bool = False

    @property
    def key(self) -> tuple:
        return (self.problem, self.executor, self.procs, self.use_delta, self.kernel_tier)

    def ident(self) -> dict:
        return dict(zip(CELL_KEY_FIELDS, self.key))


def cell_key(row: dict) -> tuple:
    """Identity of a result row; ``.get`` defaults keep documents written
    before the delta/kernel axes existed comparable."""
    return (
        row["problem"],
        row["executor"],
        row["procs"],
        row.get("use_delta", False),
        row.get("kernel_tier", False),
    )


def cell_ident(key: tuple) -> dict:
    return dict(zip(CELL_KEY_FIELDS, key))


def find_duplicate_cells(rows: list) -> list[dict]:
    """Cells that appear more than once in a result grid.

    A duplicated key means any keyed lookup (comparison baselines, trend
    series) silently last-wins on an arbitrary row — so duplicates are a
    document defect, not a tolerable redundancy.
    """
    counts: dict[tuple, int] = {}
    for row in rows:
        key = cell_key(row)
        counts[key] = counts.get(key, 0) + 1
    return [
        {**cell_ident(key), "count": count}
        for key, count in counts.items()
        if count > 1
    ]


def throughput_cells_per_second(cells: float, best_seconds: float) -> tuple[float, bool]:
    """Guarded throughput: returns ``(cells_per_second, valid)``.

    A best-of-N floor that is zero, negative, or non-finite cannot
    yield a meaningful rate — dividing by it either raises or produces
    a silently wrong number (``0.0`` reads as "infinitely slow" to any
    consumer sorting by throughput).  Such rows get ``(0.0, False)``
    and must be marked ``valid: false``.
    """
    if best_seconds > 0 and math.isfinite(best_seconds):
        return cells / best_seconds, True
    return 0.0, False


def best_and_median(times: list[float]) -> tuple[float, float]:
    """Best-of-N floor and median of a timing series."""
    return min(times), statistics.median(times)


def host_info() -> dict:
    """Host fingerprint embedded in every document and history record."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "node": platform.node(),
    }


def make_document(kind: str, schema_version: int, mode: str,
                  results: list, checks: dict) -> dict:
    """Schema-versioned document envelope shared by both suites."""
    return {
        "schema_version": schema_version,
        "kind": kind,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": mode,
        "host": host_info(),
        "results": results,
        "checks": checks,
    }


def need(obj: dict, key: str, types, where: str):
    """Validation helper: require ``obj[key]`` of the given type(s)."""
    if key not in obj:
        raise ValueError(f"{where}: missing required key {key!r}")
    if not isinstance(obj[key], types):
        raise ValueError(
            f"{where}: key {key!r} has type {type(obj[key]).__name__}, "
            f"expected {types}"
        )
    return obj[key]


def load_json_document(path) -> dict:
    """Read + parse a JSON document, raising :class:`BenchDocumentError`
    with a one-line message instead of a raw traceback."""
    p = pathlib.Path(path)
    try:
        text = p.read_text()
    except FileNotFoundError:
        raise BenchDocumentError(f"{p}: no such file") from None
    except OSError as exc:
        raise BenchDocumentError(f"{p}: cannot read ({exc.strerror or exc})") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchDocumentError(
            f"{p}: not valid JSON (line {exc.lineno}: {exc.msg})"
        ) from None


# ----------------------------------------------------------------------
# Comparison against a previous document (the single-file fallback gate)
# ----------------------------------------------------------------------


def compare_documents(old: dict, new: dict, ratio: float = REGRESSION_RATIO) -> dict:
    """Cell-by-cell wall-clock deltas of ``new`` against ``old``.

    Only cells present in both grids (same problem/executor/procs, same
    mode) are compared; a cell regresses when its new floor exceeds
    ``old * ratio``.  Rows marked ``valid: false`` on either side are
    skipped (listed under ``skipped_invalid``) instead of dividing by a
    zero-duration wall clock.  Rows whose instance size changed between
    the files (different ``total_work_cells``) are skipped too (listed
    under ``skipped_resized``) — a wall-clock ratio across different
    problem sizes is not a regression signal.

    Cells whose key appears more than once on either side are excluded
    from the ratio check (comparing against an arbitrary duplicate is
    not a signal) and surfaced under ``duplicate_cells``; callers must
    treat a non-empty ``duplicate_cells`` as a failed comparison.
    """
    comparison = {
        "baseline_created": old.get("created"),
        "comparable": old.get("mode") == new.get("mode"),
        "regression_ratio": ratio,
        "cells": [],
        "regressions": [],
        "skipped_invalid": [],
        "skipped_resized": [],
        "duplicate_cells": (
            [{"side": "baseline", **dup} for dup in find_duplicate_cells(old.get("results", []))]
            + [{"side": "new", **dup} for dup in find_duplicate_cells(new.get("results", []))]
        ),
    }
    if not comparison["comparable"]:
        comparison["note"] = (
            f"baseline mode {old.get('mode')!r} != new mode {new.get('mode')!r}; "
            "timings not compared"
        )
        return comparison
    duplicate_keys = {
        tuple(dup[field] for field in CELL_KEY_FIELDS)
        for dup in comparison["duplicate_cells"]
    }
    old_cells = {
        cell_key(r): r
        for r in old.get("results", [])
        if cell_key(r) not in duplicate_keys
    }
    for row in new.get("results", []):
        key = cell_key(row)
        if key in duplicate_keys:
            continue
        base = old_cells.get(key)
        if base is None:
            continue
        ident = cell_ident(key)
        if (
            not row.get("valid", True)
            or not base.get("valid", True)
            or base["wall_seconds"] <= 0
        ):
            comparison["skipped_invalid"].append(ident)
            continue
        old_work = base.get("total_work_cells")
        new_work = row.get("total_work_cells")
        if old_work is not None and new_work is not None and old_work != new_work:
            comparison["skipped_resized"].append(
                {**ident, "old_cells": old_work, "new_cells": new_work}
            )
            continue
        delta = row["wall_seconds"] / base["wall_seconds"]
        cell = {
            **ident,
            "old_seconds": base["wall_seconds"],
            "new_seconds": row["wall_seconds"],
            "ratio": delta,
            "regressed": delta > ratio,
        }
        comparison["cells"].append(cell)
        if cell["regressed"]:
            comparison["regressions"].append(cell)
    return comparison


def print_comparison(comparison: dict) -> None:
    if not comparison["comparable"]:
        print(f"comparison: {comparison['note']}")
        return
    print(f"comparison vs previous file ({len(comparison['cells'])} cells):")
    for cell in comparison["cells"]:
        mark = "REGRESSION" if cell["regressed"] else "ok"
        mode_tag = "delta" if cell.get("use_delta") else "dense"
        if cell.get("kernel_tier"):
            mode_tag = "tier"
        print(
            f"  {cell['problem']:<8s} {cell['executor']:<7s} "
            f"P={cell['procs']:<2d} {mode_tag:<5s} "
            f"{cell['old_seconds'] * 1e3:8.2f} -> {cell['new_seconds'] * 1e3:8.2f} ms "
            f"(x{cell['ratio']:.2f})  {mark}"
        )
    for ident in comparison.get("skipped_invalid", []):
        print(
            f"  SKIPPED (invalid row): {ident['problem']} {ident['executor']} "
            f"P={ident['procs']} use_delta={ident['use_delta']} "
            f"kernel_tier={ident['kernel_tier']} — zero-duration or marked invalid"
        )
    for ident in comparison.get("skipped_resized", []):
        print(
            f"  SKIPPED (instance resized): {ident['problem']} {ident['executor']} "
            f"P={ident['procs']} use_delta={ident['use_delta']} "
            f"kernel_tier={ident['kernel_tier']} — "
            f"{ident['old_cells']:.0f} -> {ident['new_cells']:.0f} work cells"
        )
    for dup in comparison.get("duplicate_cells", []):
        print(
            f"  DUPLICATE ({dup['side']} side): {dup['problem']} {dup['executor']} "
            f"P={dup['procs']} use_delta={dup['use_delta']} "
            f"kernel_tier={dup['kernel_tier']} appears {dup['count']} times — "
            "cell excluded from the ratio check"
        )
    n = len(comparison["regressions"])
    print(f"  {n} regression(s) flagged" if n else "  no regressions")
    if comparison.get("duplicate_cells"):
        print(f"  {len(comparison['duplicate_cells'])} duplicate cell key(s) — comparison FAILED")
