"""repro — Parallelizing Dynamic Programming Through Rank Convergence.

A from-scratch Python reproduction of Maleki, Musuvathi & Mytkowicz,
PPoPP 2014.  Quick start::

    import numpy as np
    from repro import LCSProblem, solve_sequential, solve_parallel

    rng = np.random.default_rng(0)
    a, b = rng.integers(0, 4, 400), rng.integers(0, 4, 400)
    problem = LCSProblem(a, b, width=32)
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=8)
    assert (seq.path == par.path).all() and seq.score == par.score

Subpackages: :mod:`repro.semiring` (tropical algebra),
:mod:`repro.ltdp` (the core algorithms), :mod:`repro.machine` (the
parallel-machine substrate), :mod:`repro.problems` (Viterbi,
LCS/NW/SW, DTW, seam carving), :mod:`repro.wavefront` (the Fig 11
baseline), :mod:`repro.datagen` and :mod:`repro.analysis`.
"""

from repro.exceptions import (
    ReproError,
    DimensionError,
    ZeroVectorError,
    TrivialMatrixError,
    ConvergenceError,
    ProblemDefinitionError,
    ExecutorError,
)
from repro.semiring import TropicalMatrix, are_parallel, is_rank_one
from repro.ltdp import (
    LTDPProblem,
    LTDPSolution,
    MatrixLTDPProblem,
    solve_sequential,
    solve_parallel,
    ParallelOptions,
    measure_convergence_steps,
    validate_problem,
)
from repro.machine import SimCluster, CostModel, calibrate_cell_cost
from repro.problems import (
    ConvolutionalCode,
    ViterbiDecoderProblem,
    DiscreteHMM,
    HMMViterbiProblem,
    LCSProblem,
    NeedlemanWunschProblem,
    SmithWatermanProblem,
    ScoringScheme,
    DTWProblem,
    SeamCarvingProblem,
    VOYAGER,
    CDMA_IS95,
    LTE,
    MARS,
)
from repro.analysis import scaling_sweep

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "DimensionError",
    "ZeroVectorError",
    "TrivialMatrixError",
    "ConvergenceError",
    "ProblemDefinitionError",
    "ExecutorError",
    "TropicalMatrix",
    "are_parallel",
    "is_rank_one",
    "LTDPProblem",
    "LTDPSolution",
    "MatrixLTDPProblem",
    "solve_sequential",
    "solve_parallel",
    "ParallelOptions",
    "measure_convergence_steps",
    "validate_problem",
    "SimCluster",
    "CostModel",
    "calibrate_cell_cost",
    "ConvolutionalCode",
    "ViterbiDecoderProblem",
    "DiscreteHMM",
    "HMMViterbiProblem",
    "LCSProblem",
    "NeedlemanWunschProblem",
    "SmithWatermanProblem",
    "ScoringScheme",
    "DTWProblem",
    "SeamCarvingProblem",
    "VOYAGER",
    "CDMA_IS95",
    "LTE",
    "MARS",
    "scaling_sweep",
    "__version__",
]
