"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library errors without also
swallowing programming mistakes (``TypeError`` etc. still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionError(ReproError):
    """Operands have incompatible shapes for a tropical operation."""


class ZeroVectorError(ReproError):
    """A stage vector collapsed to all tropical zeros (all ``-inf``).

    The parallel LTDP algorithm requires the all-non-zero invariant of
    paper §4.5; violating it means a stage kernel has a trivial row
    (a subproblem with no finite dependence on the previous stage).
    """


class TrivialMatrixError(ReproError):
    """A transformation matrix has a row with no finite entries.

    Paper §4.5 calls such matrices *trivial*; they would force a
    subproblem to ``-inf`` regardless of the previous stage, breaking
    Lemma 4. LTDP instances must be preprocessed to remove them.
    """


class ConvergenceError(ReproError):
    """The fix-up loop failed to converge within the allowed iterations."""


class ProblemDefinitionError(ReproError):
    """An LTDP problem definition is malformed or internally inconsistent."""


class StreamAccountingError(ReproError):
    """A streaming decoder's emitted-bit accounting went out of balance.

    The streaming Viterbi decoder must emit exactly one decision bit per
    input stage across its main loop and final flush; a mismatch means
    traceback bookkeeping is corrupt.  Raised as a real exception (not a
    bare ``assert``) so the check survives ``python -O``.
    """


class KernelRegistrationError(ReproError):
    """A fast-path kernel was registered without its required contract.

    Every kernel in the raw-speed tier must declare a non-empty
    ``bit_identity_gate`` (the documented conditions under which it may
    replace the dense per-stage path) and a stable ``name``.  Enforced
    at registration time here and statically by ``repro lint`` (REP006).
    """


class ExecutorError(ReproError):
    """A parallel executor failed (worker crash, bad configuration...)."""


class WorkerCrashError(ExecutorError):
    """A pool worker process died mid-dispatch.

    Raised internally by the fault-tolerant pool runtime; the pool
    recovers by respawning the worker and replaying its resident state,
    so callers only see this (as an :class:`ExecutorError` subclass)
    when recovery itself is exhausted or impossible.
    """
