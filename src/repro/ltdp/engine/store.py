"""The state-store layer: who *owns* stage state, behind one interface.

Before this layer existed, state ownership was welded to spec
execution: :class:`LocalRuntime` owned a driver-resident ``EngineState``
and the pool runtime owned an unrelated per-slot worker store, each
with its own ``apply`` discipline.  The refactor pulls both behind
:class:`StateStore` — the :class:`~repro.ltdp.engine.specs.StageStore`
read protocol plus idempotent post-barrier application — so the program
and runner layers can treat "where the vectors live" as a deployment
detail:

- :class:`DriverStore` — all stages in the driver process, shared by
  every spec (safe because specs only read their own range and all
  writes are buffered in :class:`~repro.ltdp.engine.specs.SpecResult`
  objects applied after the barrier);
- :class:`WorkerStore` — one slot's stages resident inside a pool
  worker, plus the per-instruction result cache that makes repeat
  delivery of an instruction a worker-side no-op.

Idempotency contract (numpywren's ``FailureTests``): ``apply`` tagged
with an instruction sequence number applies **at most once** per seq —
a re-delivered instruction's second application is dropped, so
duplicate delivery can never double-install an update.
"""

from __future__ import annotations

import numpy as np

from repro.ltdp.engine.specs import SpecResult
from repro.ltdp.problem import LTDPProblem

__all__ = ["StateStore", "DriverStore", "WorkerStore"]


class StateStore:
    """Stage-state ownership: :class:`StageStore` reads + idempotent writes.

    Subclasses supply the storage (driver lists vs per-slot dicts); this
    base owns the seq-idempotency guard shared by both.
    """

    def __init__(self) -> None:
        #: Instruction seqs whose results were already applied here.
        self._applied_seqs: set[int] = set()

    def apply(self, result: SpecResult, seq: int | None = None) -> None:
        """Install a spec's stage-resident writes, at most once per ``seq``.

        ``seq=None`` (legacy superstep-loop path) always applies —
        the classic barrier loop never re-delivers.
        """
        if seq is not None:
            if seq in self._applied_seqs:
                return
            self._applied_seqs.add(seq)
        self._apply(result)

    def _apply(self, result: SpecResult) -> None:
        raise NotImplementedError


class DriverStore(StateStore):
    """All-stages store living in the driver process (one per solve).

    The single-address-space incarnation of the paper's distributed
    stores: one slot per stage for the solution vector and the
    predecessor vector, plus the backward path array once the backward
    phase begins.  The serial / thread / forked-process runtimes all
    share one instance.
    """

    def __init__(self, problem: LTDPProblem) -> None:
        super().__init__()
        n = problem.num_stages
        self.s: list[np.ndarray | None] = [None] * (n + 1)
        self.s[0] = problem.initial_vector()
        self.pred: list[np.ndarray | None] = [None] * (n + 1)
        #: The backward path array; installed by the driver when the
        #: backward phase starts (it owns path assembly for all runtimes).
        self.path: np.ndarray | None = None
        #: Resident §4.7 delta state: stage → cached kernel evaluation.
        self.fixup_state: dict[int, object] = {}
        #: Range-lo → input boundary last consumed by a fix-up sweep
        #: there (the base vector boundary diffs apply against).
        self.fixup_input: dict[int, np.ndarray] = {}

    # -- StageStore protocol -------------------------------------------
    def get_s(self, i: int) -> np.ndarray:
        v = self.s[i]
        assert v is not None, f"stage {i} vector not yet computed"
        return v

    def get_pred(self, i: int) -> np.ndarray:
        p = self.pred[i]
        assert p is not None, f"stage {i} predecessors not yet computed"
        return p

    def get_path(self, i: int) -> int:
        assert self.path is not None, "backward phase not started"
        return int(self.path[i])

    def get_fixup_state(self, i: int):
        return self.fixup_state.get(i)

    def get_fixup_input(self, lo: int) -> np.ndarray | None:
        return self.fixup_input.get(lo)

    # -- post-barrier application --------------------------------------
    def _apply(self, result: SpecResult) -> None:
        """Install a spec's stage-resident writes.

        Path updates are deliberately *not* applied here: the driver
        owns the path array (shared with this store) and applies them
        itself, uniformly for local and pool runtimes.
        """
        for i, v in result.s_updates.items():
            self.s[i] = v
        for i, p in result.pred_updates.items():
            self.pred[i] = p
        if result.fixup_state_updates:
            self.fixup_state.update(result.fixup_state_updates)
        if result.fixup_input is not None:
            lo, vec = result.fixup_input
            self.fixup_input[lo] = vec


class WorkerStore(StateStore):
    """One slot's resident state inside a pool worker.

    Besides the stage vectors, this store owns the worker-side half of
    the idempotent-instruction contract: :attr:`results` caches the
    stripped reply of every instruction executed against this slot, so
    a re-delivered instruction returns the cached reply instead of
    executing twice (see ``_w_run_instr`` in
    :mod:`repro.ltdp.engine.poolrt`).
    """

    def __init__(self, problem: LTDPProblem) -> None:
        super().__init__()
        self.problem = problem
        self.s: dict[int, np.ndarray] = {}
        self.pred: dict[int, np.ndarray] = {}
        self.path: dict[int, int] = {}
        #: Resident §4.7 delta state (stage → cached kernel evaluation)
        #: and the last fix-up input boundary per range-lo — the bases
        #: sparse fix-up and boundary diffs apply against.  These never
        #: cross the wire: specs write them via SpecResult and
        #: :meth:`~repro.ltdp.engine.specs.SpecResult.stripped` drops
        #: them from the reply.
        self.fixup_state: dict[int, object] = {}
        self.fixup_input: dict[int, np.ndarray] = {}
        #: Instruction seq → stripped reply already produced by this
        #: slot (the duplicate-delivery no-op cache).
        self.results: dict[int, SpecResult] = {}

    # -- StageStore protocol -------------------------------------------
    def get_s(self, i: int) -> np.ndarray:
        if i == 0 and 0 not in self.s:
            self.s[0] = self.problem.initial_vector()
        return self.s[i]

    def get_pred(self, i: int) -> np.ndarray:
        return self.pred[i]

    def get_path(self, i: int) -> int:
        return self.path[i]

    def get_fixup_state(self, i: int):
        return self.fixup_state.get(i)

    def get_fixup_input(self, lo: int) -> np.ndarray | None:
        return self.fixup_input.get(lo)

    def _apply(self, result: SpecResult) -> None:
        self.s.update(result.s_updates)
        self.pred.update(result.pred_updates)
        self.path.update(result.path_updates)
        self.fixup_state.update(result.fixup_state_updates)
        if result.fixup_input is not None:
            lo, vec = result.fixup_input
            self.fixup_input[lo] = vec
