"""State-resident runtime over the persistent worker pool.

:class:`PoolRuntime` maps each virtual processor (slot) onto one of the
:class:`~repro.machine.pool.PoolProcessExecutor`'s persistent workers
and keeps that slot's stage vectors, predecessor vectors and backward
path segment **inside the worker**
(:class:`~repro.ltdp.engine.store.WorkerStore`) for the whole solve:

- ``begin`` (constructor) pickles the problem **once** and broadcasts
  it to every worker;
- each superstep ships only sequence-numbered instructions (a spec —
  a boundary vector + scalars — per processor) and receives *stripped*
  results — the O(width) range-final vector and scalar accounting,
  never the per-stage payloads.  That is exactly the paper's cost
  model: per fix-up iteration, one boundary vector per neighbour pair
  crosses a process boundary, nothing else;
- the wire protocol is **idempotent per instruction**: workers cache
  each instruction's stripped reply by seq, so a re-delivered
  instruction (duplicate delivery, post-recovery re-send) returns the
  cached reply without re-executing — numpywren's ``FailureTests``
  contract at the transport layer;
- when the backward partition differs from the forward one (objective
  problems whose optimum lies before the last stage), a one-time
  driver-mediated redistribution moves the few predecessor vectors a
  slot is missing;
- gathers (``keep_stage_vectors``, the serial-traceback fallback) pull
  the resident arrays out at the end, off the hot path.

Crash recovery is "re-run a program suffix": the shared
:class:`~repro.ltdp.engine.program.InstructionProgram` *is* the replay
journal — rebuilding a respawned worker replays the recorded
instructions of the slots it owns, in program order (PR 2's per-slot
journal, subsumed).

The functions prefixed ``_w_`` execute *inside* workers against the
worker's persistent namespace; they are module-level so they pickle by
reference.
"""

from __future__ import annotations

import pickle
import time
from typing import Sequence

import numpy as np

from repro.exceptions import ExecutorError
from repro.ltdp.engine.program import Instruction, InstructionProgram
from repro.ltdp.engine.runner import DeliveryPolicy, RunnerCrew
from repro.ltdp.engine.runtime import SuperstepRuntime, _wants_crew
from repro.ltdp.engine.specs import SpecResult, SuperstepSpec
from repro.ltdp.engine.store import WorkerStore
from repro.ltdp.partition import StageRange
from repro.ltdp.problem import LTDPProblem
from repro.machine.trace import Tracer

__all__ = ["PoolRuntime"]


# ----------------------------------------------------------------------
# Worker-side namespace functions (run via PoolProcessExecutor.call_slots
# / broadcast; ``ns`` is the worker's persistent namespace dict).
# ----------------------------------------------------------------------


def _w_reset(ns, problem_blob: bytes, slots: list[int]) -> None:
    """Install the problem (shipped once per solve) and fresh slot states."""
    problem = pickle.loads(problem_blob)
    ns["problem"] = problem
    ns["states"] = {slot: WorkerStore(problem) for slot in slots}


def _w_run_instr(ns, seq: int, spec: SuperstepSpec) -> SpecResult:
    """Execute one instruction against the slot's resident store.

    Idempotent under repeat delivery: the stripped reply of every
    executed instruction is cached by seq, and a re-delivery (duplicate
    from the runner queue, or a post-recovery re-send of a request the
    worker already served) returns the cache without touching resident
    state.  During crash-recovery replay the same function re-runs the
    recorded program suffix — replies are discarded by the replay
    batch, and re-populating the cache is exactly what a rebuilt worker
    needs to keep honouring the contract.

    Stage-resident writes are applied here, in the worker (at most once
    per seq, via the store's seq guard); the reply is stripped down to
    boundary vector + scalars (+ path indices, which are the backward
    phase's output).
    """
    store = ns["states"][spec.proc]
    cached = store.results.get(seq)
    if cached is not None:
        return cached
    result = spec.execute(ns["problem"], store)
    store.apply(result, seq=seq)
    stripped = result.stripped()
    store.results[seq] = stripped
    return stripped


def _w_collect(ns, slot: int, kind: str, stages: list[int]):
    """Ship the requested resident vectors back to the driver."""
    store = ns["states"][slot]
    source = store.s if kind == "s" else store.pred
    return {i: source[i] for i in stages if i in source}


def _w_install_pred(ns, slot: int, mapping: dict[int, np.ndarray]) -> None:
    """Merge redistributed predecessor vectors into a slot's store."""
    ns["states"][slot].pred.update(mapping)


# ----------------------------------------------------------------------


class PoolRuntime(SuperstepRuntime):
    """Plan executor backed by persistent, state-resident pool workers.

    With ``runners > 1`` (or a redelivery-testing
    :class:`~repro.ltdp.engine.runner.DeliveryPolicy`), instructions are
    pulled by a :class:`~repro.ltdp.engine.runner.RunnerCrew` and each
    dispatched individually to its slot's worker (the pool serializes
    per-worker pipe traffic); with the default single runner, a whole
    superstep ships as one batched dispatch per barrier — the classic
    one-round-trip-per-superstep wire cost.
    """

    def __init__(
        self,
        pool,
        problem: LTDPProblem,
        ranges: Sequence[StageRange],
        tracer: Tracer | None = None,
        runners: int = 1,
        delivery: DeliveryPolicy | None = None,
    ) -> None:
        self.pool = pool
        self.problem = problem
        self.num_stages = problem.num_stages
        self.forward_ranges = list(ranges)
        self.tracer = tracer
        self.program = InstructionProgram()
        # The pool emits per-worker dispatch spans and recovery events
        # into the same tracer; cleared again in finish() so later
        # untraced solves on a shared pool stay untraced.
        if tracer and hasattr(pool, "set_tracer"):
            pool.set_tracer(tracer)
        try:
            blob = pickle.dumps(problem, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise ExecutorError(
                "the pool runtime ships the problem to persistent workers "
                f"once per solve, but this problem is not picklable: {exc!r}"
            ) from exc
        # Every worker learns every slot id; a slot's state only ever
        # fills on its owning worker, the rest stay empty placeholders.
        slots = [rg.proc for rg in self.forward_ranges]
        self._slots = slots
        self._reset_args = (blob, slots)
        if hasattr(self.pool, "set_rebuild_hook"):
            self.pool.set_rebuild_hook(self._rebuild_worker)
        self.pool.broadcast(_w_reset, (blob, slots))
        self._crew: RunnerCrew | None = None
        if _wants_crew(runners, delivery):
            self._crew = RunnerCrew(
                runners,
                self._execute_instr,
                self.program,
                tracer=tracer,
                policy=delivery,
            )
            if hasattr(pool, "add_teardown_hook"):
                pool.add_teardown_hook(self._crew.close)

    @property
    def step_no(self) -> int:
        return self.program.step_no

    def _rebuild_worker(self, w: int) -> tuple[list, int]:
        """Recovery program for respawned worker ``w`` (pool rebuild hook).

        Returns ``(calls, replayed)``: namespace calls that re-install
        the problem and re-run, in program order, the **recorded**
        instruction suffix of every slot worker ``w`` owns (the paper's
        Fig 4 restartability: any processor can be re-run from its
        predecessor's boundary vector), plus the replayed-instruction
        count.  Compiled-but-unrecorded instructions are excluded: the
        in-flight request re-sends after recovery and must not have
        replayed ahead of itself.
        """
        calls: list[tuple] = [(_w_reset, self._reset_args)]
        replayed = 0
        for slot in self._slots:
            if self.pool.worker_of_slot(slot) != w:
                continue
            for instr in self.program.slot_history(slot):
                if not self.program.is_recorded(instr.seq):
                    continue
                if instr.op == "spec":
                    calls.append((_w_run_instr, (instr.seq, instr.spec)))
                    replayed += 1
                else:  # pred-install: redistributed predecessor vectors
                    calls.append((_w_install_pred, (slot, instr.payload)))
        return calls, replayed

    def _execute_instr(self, instr: Instruction) -> SpecResult:
        """Runner-crew transport: one dispatch per pulled instruction."""
        return self.pool.call_slots(
            [(instr.slot, _w_run_instr, (instr.seq, instr.spec))]
        )[0]

    def run(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> list[SpecResult]:
        tracer = self.tracer
        step_no, instrs = self.program.add_superstep(specs, label)
        if self._crew is not None:
            if not tracer:
                return self._crew.run_step(instrs)
            t0 = time.perf_counter()
            with tracer.context(superstep=step_no, label=label):
                results = self._crew.run_step(instrs)
            tracer.add_span(
                "superstep",
                t0,
                time.perf_counter(),
                superstep=step_no,
                label=label,
                procs=len(specs),
            )
            return results
        # Classic path: the whole superstep as one batched dispatch per
        # worker — one round trip per barrier.
        calls = [
            (instr.slot, _w_run_instr, (instr.seq, instr.spec))
            for instr in instrs
        ]
        if not tracer:
            results = self.pool.call_slots(calls)
        else:
            t0 = time.perf_counter()
            # The context tags the pool's per-worker dispatch spans with
            # this superstep's identity.
            with tracer.context(superstep=step_no, label=label):
                results = self.pool.call_slots(calls)
            tracer.add_span(
                "superstep",
                t0,
                time.perf_counter(),
                superstep=step_no,
                label=label,
                procs=len(specs),
            )
        # Record only after the barrier: an in-flight instruction must
        # not be part of the replay that precedes its own re-send.
        for instr, result in zip(instrs, results):
            self.program.record_result(instr.seq, result)
        return results

    def install_path(self, path: np.ndarray) -> None:
        # The driver owns the path array; workers keep their own segment
        # resident (written by their backward specs), so nothing to do.
        pass

    def prepare_backward(
        self,
        backward_ranges: Sequence[StageRange],
        forward_ranges: Sequence[StageRange],
    ) -> None:
        """One-time pred redistribution for a repartitioned backward phase.

        Worker slot ``p`` holds predecessors for its *forward* range; if
        its backward range covers other stages, fetch them from their
        forward owners and install them — driver-mediated, once, before
        the backward supersteps start.
        """
        owner_of: dict[int, int] = {}
        owned: dict[int, set[int]] = {}
        for rg in forward_ranges:
            stages = set(rg.stages())
            owned[rg.proc] = stages
            for i in stages:
                owner_of[i] = rg.proc
        needs: dict[int, list[int]] = {}
        for rg in backward_ranges:
            missing = sorted(set(rg.stages()) - owned.get(rg.proc, set()))
            if missing:
                needs[rg.proc] = missing
        if not needs:
            return
        # Gather each missing stage from its forward owner...
        fetch: dict[int, list[int]] = {}
        for stages in needs.values():
            for i in stages:
                fetch.setdefault(owner_of[i], []).append(i)
        gathered: dict[int, np.ndarray] = {}
        for chunk in self.pool.call_slots(
            [
                (owner, _w_collect, (owner, "pred", stages))
                for owner, stages in fetch.items()
            ]
        ):
            gathered.update(chunk)
        # ...and install it on the slot whose backward range needs it.
        installs = {
            slot: {i: gathered[i] for i in stages}
            for slot, stages in needs.items()
        }
        self.pool.call_slots(
            [
                (slot, _w_install_pred, (slot, mapping))
                for slot, mapping in installs.items()
            ]
        )
        # Journal the installs (driver-mediated, already barriered):
        # recorded immediately so crash recovery replays them in slot
        # order between the forward and backward instruction suffixes.
        for slot, mapping in installs.items():
            instr = self.program.add_install(slot, mapping)
            self.program.record_result(instr.seq)

    # -- gathers --------------------------------------------------------
    def _gather(self, kind: str) -> list[np.ndarray | None]:
        out: list[np.ndarray | None] = [None] * (self.num_stages + 1)
        if kind == "s":
            out[0] = self.problem.initial_vector()
        ranges = self.forward_ranges
        for chunk in self.pool.call_slots(
            [(rg.proc, _w_collect, (rg.proc, kind, list(rg.stages()))) for rg in ranges]
        ):
            for i, v in chunk.items():
                out[i] = v
        return out

    def stage_vectors(self) -> list[np.ndarray | None]:
        return self._gather("s")

    def pred_vectors(self) -> list[np.ndarray | None]:
        return self._gather("pred")

    def finish(self) -> None:
        # The program journal belongs to this solve; a stale hook would
        # replay the wrong state into a worker respawned during a later
        # solve.
        if self._crew is not None:
            self._crew.close()
            if hasattr(self.pool, "remove_teardown_hook"):
                self.pool.remove_teardown_hook(self._crew.close)
            self._crew = None
        if hasattr(self.pool, "set_rebuild_hook"):
            self.pool.set_rebuild_hook(None)
        if self.tracer and hasattr(self.pool, "set_tracer"):
            self.pool.set_tracer(None)
