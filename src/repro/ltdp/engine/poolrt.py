"""State-resident runtime over the persistent worker pool.

:class:`PoolRuntime` maps each virtual processor (slot) onto one of the
:class:`~repro.machine.pool.PoolProcessExecutor`'s persistent workers
and keeps that slot's stage vectors, predecessor vectors and backward
path segment **inside the worker** for the whole solve:

- ``begin`` (constructor) pickles the problem **once** and broadcasts
  it to every worker;
- each superstep ships only the declarative spec objects (a boundary
  vector + scalars per processor) and receives *stripped* results — the
  O(width) range-final vector and scalar accounting, never the
  per-stage payloads.  That is exactly the paper's cost model: per
  fix-up iteration, one boundary vector per neighbour pair crosses a
  process boundary, nothing else;
- when the backward partition differs from the forward one (objective
  problems whose optimum lies before the last stage), a one-time
  driver-mediated redistribution moves the few predecessor vectors a
  slot is missing;
- gathers (``keep_stage_vectors``, the serial-traceback fallback) pull
  the resident arrays out at the end, off the hot path.

The functions prefixed ``_w_`` execute *inside* workers against the
worker's persistent namespace; they are module-level so they pickle by
reference.
"""

from __future__ import annotations

import pickle
import time
from typing import Sequence

import numpy as np

from repro.exceptions import ExecutorError
from repro.ltdp.engine.runtime import SuperstepRuntime
from repro.ltdp.engine.specs import SpecResult, SuperstepSpec
from repro.ltdp.partition import StageRange
from repro.ltdp.problem import LTDPProblem
from repro.machine.trace import Tracer

__all__ = ["PoolRuntime"]


class _WorkerStore:
    """One slot's resident state inside a pool worker."""

    def __init__(self, problem: LTDPProblem) -> None:
        self.problem = problem
        self.s: dict[int, np.ndarray] = {}
        self.pred: dict[int, np.ndarray] = {}
        self.path: dict[int, int] = {}
        #: Resident §4.7 delta state (stage → cached kernel evaluation)
        #: and the last fix-up input boundary per range-lo — the bases
        #: sparse fix-up and boundary diffs apply against.  These never
        #: cross the wire: specs write them via SpecResult and
        #: :meth:`~repro.ltdp.engine.specs.SpecResult.stripped` drops
        #: them from the reply.
        self.fixup_state: dict[int, object] = {}
        self.fixup_input: dict[int, np.ndarray] = {}

    # -- StageStore protocol -------------------------------------------
    def get_s(self, i: int) -> np.ndarray:
        if i == 0 and 0 not in self.s:
            self.s[0] = self.problem.initial_vector()
        return self.s[i]

    def get_pred(self, i: int) -> np.ndarray:
        return self.pred[i]

    def get_path(self, i: int) -> int:
        return self.path[i]

    def get_fixup_state(self, i: int):
        return self.fixup_state.get(i)

    def get_fixup_input(self, lo: int) -> np.ndarray | None:
        return self.fixup_input.get(lo)

    def apply(self, result: SpecResult) -> None:
        self.s.update(result.s_updates)
        self.pred.update(result.pred_updates)
        self.path.update(result.path_updates)
        self.fixup_state.update(result.fixup_state_updates)
        if result.fixup_input is not None:
            lo, vec = result.fixup_input
            self.fixup_input[lo] = vec


# ----------------------------------------------------------------------
# Worker-side namespace functions (run via PoolProcessExecutor.call_slots
# / broadcast; ``ns`` is the worker's persistent namespace dict).
# ----------------------------------------------------------------------


def _w_reset(ns, problem_blob: bytes, slots: list[int]) -> None:
    """Install the problem (shipped once per solve) and fresh slot states."""
    problem = pickle.loads(problem_blob)
    ns["problem"] = problem
    ns["states"] = {slot: _WorkerStore(problem) for slot in slots}


def _w_run_spec(ns, spec: SuperstepSpec) -> SpecResult:
    """Execute one spec against the slot's resident store.

    Stage-resident writes are applied here, in the worker; the reply is
    stripped down to boundary vector + scalars (+ path indices, which
    are the backward phase's output).
    """
    store = ns["states"][spec.proc]
    result = spec.execute(ns["problem"], store)
    store.apply(result)
    return result.stripped()


def _w_collect(ns, slot: int, kind: str, stages: list[int]):
    """Ship the requested resident vectors back to the driver."""
    store = ns["states"][slot]
    source = store.s if kind == "s" else store.pred
    return {i: source[i] for i in stages if i in source}


def _w_install_pred(ns, slot: int, mapping: dict[int, np.ndarray]) -> None:
    """Merge redistributed predecessor vectors into a slot's store."""
    ns["states"][slot].pred.update(mapping)


def _w_replay_spec(ns, spec: SuperstepSpec) -> None:
    """Re-execute a journalled spec during crash recovery.

    Identical to :func:`_w_run_spec` except the result is discarded —
    the driver already consumed it before the crash; replay only needs
    the store side-effects.  Spec execution is deterministic given the
    problem, the store contents and the spec's embedded inputs (seed /
    boundary), so replaying the journal in order rebuilds the resident
    state bit-identically.
    """
    store = ns["states"][spec.proc]
    store.apply(spec.execute(ns["problem"], store))


# ----------------------------------------------------------------------


class PoolRuntime(SuperstepRuntime):
    """Plan executor backed by persistent, state-resident pool workers."""

    def __init__(
        self,
        pool,
        problem: LTDPProblem,
        ranges: Sequence[StageRange],
        tracer: Tracer | None = None,
    ) -> None:
        self.pool = pool
        self.problem = problem
        self.num_stages = problem.num_stages
        self.forward_ranges = list(ranges)
        self.tracer = tracer
        self._step_no = 0
        # The pool emits per-worker dispatch spans and recovery events
        # into the same tracer; cleared again in finish() so later
        # untraced solves on a shared pool stay untraced.
        if tracer and hasattr(pool, "set_tracer"):
            pool.set_tracer(tracer)
        try:
            blob = pickle.dumps(problem, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise ExecutorError(
                "the pool runtime ships the problem to persistent workers "
                f"once per solve, but this problem is not picklable: {exc!r}"
            ) from exc
        # Every worker learns every slot id; a slot's state only ever
        # fills on its owning worker, the rest stay empty placeholders.
        slots = [rg.proc for rg in self.forward_ranges]
        self._slots = slots
        self._reset_args = (blob, slots)
        # Per-slot replay journal: every state-mutating operation that
        # has *completed* on the worker, in execution order.  When the
        # pool respawns a dead worker, _rebuild_worker replays the
        # journal for the slots that worker owns, reconstructing its
        # resident state bit-identically before the in-flight superstep
        # re-runs (the paper's Fig 4 restartability: any processor can
        # be re-run from its predecessor's boundary vector).
        self._journal: dict[int, list[tuple[str, object]]] = {
            slot: [] for slot in slots
        }
        if hasattr(self.pool, "set_rebuild_hook"):
            self.pool.set_rebuild_hook(self._rebuild_worker)
        self.pool.broadcast(_w_reset, (blob, slots))

    def _rebuild_worker(self, w: int) -> tuple[list, int]:
        """Recovery program for respawned worker ``w`` (pool rebuild hook).

        Returns ``(calls, replayed)``: namespace calls that re-install
        the problem and replay, in order, every journalled operation of
        the slots worker ``w`` owns, plus the replayed-superstep count.
        """
        calls: list[tuple] = [(_w_reset, self._reset_args)]
        replayed = 0
        for slot in self._slots:
            if self.pool.worker_of_slot(slot) != w:
                continue
            for kind, payload in self._journal[slot]:
                if kind == "spec":
                    calls.append((_w_replay_spec, (payload,)))
                    replayed += 1
                else:  # "pred": redistributed predecessor vectors
                    calls.append((_w_install_pred, (slot, payload)))
        return calls, replayed

    def run(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> list[SpecResult]:
        tracer = self.tracer
        calls = [(spec.proc, _w_run_spec, (spec,)) for spec in specs]
        if not tracer:
            results = self.pool.call_slots(calls)
        else:
            self._step_no += 1
            t0 = time.perf_counter()
            # The context tags the pool's per-worker dispatch spans with
            # this superstep's identity.
            with tracer.context(superstep=self._step_no, label=label):
                results = self.pool.call_slots(calls)
            tracer.add_span(
                "superstep",
                t0,
                time.perf_counter(),
                superstep=self._step_no,
                label=label,
                procs=len(specs),
            )
        # Journal only after the barrier: an in-flight spec must not be
        # part of the replay that precedes its own re-send.
        for spec in specs:
            self._journal[spec.proc].append(("spec", spec))
        return results

    def install_path(self, path: np.ndarray) -> None:
        # The driver owns the path array; workers keep their own segment
        # resident (written by their backward specs), so nothing to do.
        pass

    def prepare_backward(
        self,
        backward_ranges: Sequence[StageRange],
        forward_ranges: Sequence[StageRange],
    ) -> None:
        """One-time pred redistribution for a repartitioned backward phase.

        Worker slot ``p`` holds predecessors for its *forward* range; if
        its backward range covers other stages, fetch them from their
        forward owners and install them — driver-mediated, once, before
        the backward supersteps start.
        """
        owner_of: dict[int, int] = {}
        owned: dict[int, set[int]] = {}
        for rg in forward_ranges:
            stages = set(rg.stages())
            owned[rg.proc] = stages
            for i in stages:
                owner_of[i] = rg.proc
        needs: dict[int, list[int]] = {}
        for rg in backward_ranges:
            missing = sorted(set(rg.stages()) - owned.get(rg.proc, set()))
            if missing:
                needs[rg.proc] = missing
        if not needs:
            return
        # Gather each missing stage from its forward owner...
        fetch: dict[int, list[int]] = {}
        for stages in needs.values():
            for i in stages:
                fetch.setdefault(owner_of[i], []).append(i)
        gathered: dict[int, np.ndarray] = {}
        for chunk in self.pool.call_slots(
            [
                (owner, _w_collect, (owner, "pred", stages))
                for owner, stages in fetch.items()
            ]
        ):
            gathered.update(chunk)
        # ...and install it on the slot whose backward range needs it.
        installs = {
            slot: {i: gathered[i] for i in stages}
            for slot, stages in needs.items()
        }
        self.pool.call_slots(
            [
                (slot, _w_install_pred, (slot, mapping))
                for slot, mapping in installs.items()
            ]
        )
        for slot, mapping in installs.items():
            self._journal[slot].append(("pred", mapping))

    # -- gathers --------------------------------------------------------
    def _gather(self, kind: str) -> list[np.ndarray | None]:
        out: list[np.ndarray | None] = [None] * (self.num_stages + 1)
        if kind == "s":
            out[0] = self.problem.initial_vector()
        ranges = self.forward_ranges
        for chunk in self.pool.call_slots(
            [(rg.proc, _w_collect, (rg.proc, kind, list(rg.stages()))) for rg in ranges]
        ):
            for i, v in chunk.items():
                out[i] = v
        return out

    def stage_vectors(self) -> list[np.ndarray | None]:
        return self._gather("s")

    def pred_vectors(self) -> list[np.ndarray | None]:
        return self._gather("pred")

    def finish(self) -> None:
        # The journal belongs to this solve; a stale hook would replay
        # the wrong state into a worker respawned during a later solve.
        if hasattr(self.pool, "set_rebuild_hook"):
            self.pool.set_rebuild_hook(None)
        if self.tracer and hasattr(self.pool, "set_tracer"):
            self.pool.set_tracer(None)
