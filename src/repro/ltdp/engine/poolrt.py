"""State-resident runtime over the persistent worker pool.

:class:`PoolRuntime` maps each virtual processor (slot) onto one of the
:class:`~repro.machine.pool.PoolProcessExecutor`'s persistent workers
and keeps that slot's stage vectors, predecessor vectors and backward
path segment **inside the worker**
(:class:`~repro.ltdp.engine.store.WorkerStore`) for the whole solve:

- ``begin`` (constructor) pickles the problem **once** and broadcasts
  it to every worker;
- each superstep ships only sequence-numbered instructions (a spec —
  a boundary vector + scalars — per processor) and receives *stripped*
  results — the O(width) range-final vector and scalar accounting,
  never the per-stage payloads.  That is exactly the paper's cost
  model: per fix-up iteration, one boundary vector per neighbour pair
  crosses a process boundary, nothing else;
- the wire protocol is **idempotent per instruction**: workers cache
  each instruction's stripped reply by seq, so a re-delivered
  instruction (duplicate delivery, post-recovery re-send) returns the
  cached reply without re-executing — numpywren's ``FailureTests``
  contract at the transport layer;
- when the backward partition differs from the forward one (objective
  problems whose optimum lies before the last stage), a one-time
  driver-mediated redistribution moves the few predecessor vectors a
  slot is missing;
- gathers (``keep_stage_vectors``, the serial-traceback fallback) pull
  the resident arrays out at the end, off the hot path.

Sessions: each runtime owns a **session key** and all of its worker-side
state lives under ``ns["sessions"][key]``, so several runtimes — the
serve layer keeps one resident runtime per cached problem family while
ad-hoc solves come and go — can share one pool without trampling each
other's resident state.  ``finish()`` drops the session from the
workers; a *resident* runtime (serve) simply doesn't call it between
requests.

Rebinding: :meth:`PoolRuntime.rebind_problem` swaps the worker-side
problem **without** discarding resident state — the serve layer's
cache-hit path, where a near-duplicate request repairs the canonical
solve in place (:class:`~repro.ltdp.engine.specs.DeltaRepairSpec`).
Rebinds are journalled with a sequence watermark so crash recovery can
interleave them correctly into the replay.

Crash recovery is "re-run a program suffix": the shared
:class:`~repro.ltdp.engine.program.InstructionProgram` *is* the replay
journal — rebuilding a respawned worker replays the recorded
instructions of the slots it owns, merged across slots in program-seq
order (a worker owning several slots must see each rebind exactly where
the original execution did).

The functions prefixed ``_w_`` execute *inside* workers against the
worker's persistent namespace; they are module-level so they pickle by
reference.
"""

from __future__ import annotations

import itertools
import pickle
import time
from typing import Sequence

import numpy as np

from repro.exceptions import ExecutorError
from repro.ltdp.engine.program import Instruction, InstructionProgram
from repro.ltdp.engine.runner import DeliveryPolicy, RunnerCrew
from repro.ltdp.engine.runtime import SuperstepRuntime, _wants_crew
from repro.ltdp.engine.specs import SpecResult, SuperstepSpec
from repro.ltdp.engine.store import WorkerStore
from repro.ltdp.partition import StageRange
from repro.ltdp.problem import LTDPProblem
from repro.machine.trace import Tracer

__all__ = ["PoolRuntime"]


# ----------------------------------------------------------------------
# Worker-side namespace functions (run via PoolProcessExecutor.call_slots
# / broadcast; ``ns`` is the worker's persistent namespace dict, and the
# per-session state lives under ``ns["sessions"][key]``).
# ----------------------------------------------------------------------


def _w_reset(ns, key: str, problem_blob: bytes, slots: list[int]) -> None:
    """Install the session: its problem (shipped once) and fresh slot states."""
    problem = pickle.loads(problem_blob)
    ns.setdefault("sessions", {})[key] = {
        "problem": problem,
        "states": {slot: WorkerStore(problem) for slot in slots},
    }
    _warm_kernel_plans(problem)


def _w_set_problem(ns, key: str, problem_blob: bytes) -> None:
    """Rebind the session's problem, keeping resident state (cache-hit path).

    The stage-0 vector is recomputed lazily from the new problem; every
    other resident vector stays — that's the point: a
    :class:`~repro.ltdp.engine.specs.DeltaRepairSpec` sweep repairs the
    stale stages against the rebound problem.
    """
    problem = pickle.loads(problem_blob)
    sess = ns["sessions"][key]
    sess["problem"] = problem
    for store in sess["states"].values():
        store.problem = problem
        store.s.pop(0, None)
    _warm_kernel_plans(problem)


def _warm_kernel_plans(problem) -> None:
    """Pre-build this worker's block-kernel plans at problem-bind time.

    Plans are cached per process by content fingerprint, so warming at
    bind keeps the first superstep dispatch off the plan-build path.
    Best-effort by design: the tier is an optimization, and a plan
    failure here must never break a worker install — the per-dispatch
    gate falls back to the dense path regardless.
    """
    try:
        from repro.kernels import warm_kernels

        warm_kernels(problem)
    except Exception:  # repro: noqa[REP005]: plan warming is a best-effort optimization; any plan-build failure must leave the worker install intact (dense path still correct)
        pass


def _w_drop(ns, key: str) -> None:
    """Forget the session entirely (runtime finish / session eviction)."""
    ns.get("sessions", {}).pop(key, None)


def _w_run_instr(ns, key: str, seq: int, spec: SuperstepSpec) -> SpecResult:
    """Execute one instruction against the slot's resident store.

    Idempotent under repeat delivery: the stripped reply of every
    executed instruction is cached by seq, and a re-delivery (duplicate
    from the runner queue, or a post-recovery re-send of a request the
    worker already served) returns the cache without touching resident
    state.  During crash-recovery replay the same function re-runs the
    recorded program suffix — replies are discarded by the replay
    batch, and re-populating the cache is exactly what a rebuilt worker
    needs to keep honouring the contract.

    Stage-resident writes are applied here, in the worker (at most once
    per seq, via the store's seq guard); the reply is stripped down to
    boundary vector + scalars (+ path indices, which are the backward
    phase's output).
    """
    sess = ns["sessions"][key]
    store = sess["states"][spec.proc]
    cached = store.results.get(seq)
    if cached is not None:
        return cached
    result = spec.execute(sess["problem"], store)
    store.apply(result, seq=seq)
    stripped = result.stripped()
    store.results[seq] = stripped
    return stripped


def _w_collect(ns, key: str, slot: int, kind: str, stages: list[int]):
    """Ship the requested resident vectors back to the driver."""
    store = ns["sessions"][key]["states"][slot]
    source = store.s if kind == "s" else store.pred
    return {i: source[i] for i in stages if i in source}


def _w_install_pred(ns, key: str, slot: int, mapping: dict[int, np.ndarray]) -> None:
    """Merge redistributed predecessor vectors into a slot's store."""
    ns["sessions"][key]["states"][slot].pred.update(mapping)


# ----------------------------------------------------------------------


class PoolRuntime(SuperstepRuntime):
    """Plan executor backed by persistent, state-resident pool workers.

    With ``runners > 1`` (or a redelivery-testing
    :class:`~repro.ltdp.engine.runner.DeliveryPolicy`), instructions are
    pulled by a :class:`~repro.ltdp.engine.runner.RunnerCrew` and each
    dispatched individually to its slot's worker (the pool serializes
    per-worker pipe traffic); with the default single runner, a whole
    superstep ships as one batched dispatch per barrier — the classic
    one-round-trip-per-superstep wire cost.
    """

    _key_counter = itertools.count(1)

    def __init__(
        self,
        pool,
        problem: LTDPProblem,
        ranges: Sequence[StageRange],
        tracer: Tracer | None = None,
        runners: int = 1,
        delivery: DeliveryPolicy | None = None,
        session_key: str | None = None,
    ) -> None:
        self.pool = pool
        self.problem = problem
        self.num_stages = problem.num_stages
        self.forward_ranges = list(ranges)
        self.tracer = tracer
        self.program = InstructionProgram()
        self.session_key = (
            session_key
            if session_key is not None
            else f"solve-{next(self._key_counter)}"
        )
        self._finished = False
        # The pool emits per-worker dispatch spans and recovery events
        # into the same tracer; cleared again in finish() so later
        # untraced solves on a shared pool stay untraced.
        if tracer and hasattr(pool, "set_tracer"):
            pool.set_tracer(tracer)
        blob = self._pickle_problem(problem)
        # Every worker learns every slot id; a slot's state only ever
        # fills on its owning worker, the rest stay empty placeholders.
        slots = [rg.proc for rg in self.forward_ranges]
        self._slots = slots
        # Problem history for crash replay: ``(seq_watermark, blob)`` —
        # instructions with seq > watermark executed under that blob's
        # problem.  Entry 0 is the construction-time problem.
        self._problem_history: list[tuple[int, bytes]] = [(0, blob)]
        if hasattr(self.pool, "add_rebuild_hook"):
            self.pool.add_rebuild_hook(self, self._rebuild_worker)
        elif hasattr(self.pool, "set_rebuild_hook"):
            self.pool.set_rebuild_hook(self._rebuild_worker)
        self.pool.broadcast(_w_reset, (self.session_key, blob, slots))
        self._crew: RunnerCrew | None = None
        if _wants_crew(runners, delivery):
            self._crew = RunnerCrew(
                runners,
                self._execute_instr,
                self.program,
                tracer=tracer,
                policy=delivery,
            )
            if hasattr(pool, "add_teardown_hook"):
                pool.add_teardown_hook(self._crew.close)

    @staticmethod
    def _pickle_problem(problem: LTDPProblem) -> bytes:
        try:
            return pickle.dumps(problem, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise ExecutorError(
                "the pool runtime ships the problem to persistent workers "
                f"once per solve, but this problem is not picklable: {exc!r}"
            ) from exc

    @property
    def step_no(self) -> int:
        return self.program.step_no

    @property
    def journal_len(self) -> int:
        """Instructions journalled so far (the serve layer's rebase bound:
        a resident session whose replay program grows past its cap is
        cheaper to rebuild from scratch than to keep replaying)."""
        return len(self.program)

    def rebind_problem(self, problem: LTDPProblem) -> None:
        """Swap the worker-side problem, keeping all resident state.

        The serve layer's cache-hit path: after rebinding, a
        :func:`~repro.ltdp.engine.forward.repair_forward_phase` sweep
        repairs the resident solve against the new problem.  The rebind
        is journalled with the current program length as its sequence
        watermark so a crash replay re-applies it between exactly the
        same instructions as the original execution.
        """
        blob = self._pickle_problem(problem)
        self.pool.broadcast(_w_set_problem, (self.session_key, blob))
        self.problem = problem
        self._problem_history.append((len(self.program), blob))

    def _rebuild_worker(self, w: int) -> tuple[list, int]:
        """Recovery program for respawned worker ``w`` (pool rebuild hook).

        Returns ``(calls, replayed)``: namespace calls that re-install
        the session and re-run the **recorded** instruction suffix of
        every slot worker ``w`` owns (the paper's Fig 4 restartability:
        any processor can be re-run from its predecessor's boundary
        vector), plus the replayed-instruction count.  The slots'
        histories are merged in program-seq order with the journalled
        problem rebinds interleaved at their watermarks — a worker
        owning several slots must replay each instruction under the
        same problem the original execution saw.  Compiled-but-
        unrecorded instructions are excluded: the in-flight request
        re-sends after recovery and must not have replayed ahead of
        itself.
        """
        instrs: list[Instruction] = []
        for slot in self._slots:
            if self.pool.worker_of_slot(slot) != w:
                continue
            for instr in self.program.slot_history(slot):
                if self.program.is_recorded(instr.seq):
                    instrs.append(instr)
        instrs.sort(key=lambda ins: ins.seq)
        key = self.session_key
        calls: list[tuple] = [
            (_w_reset, (key, self._problem_history[0][1], self._slots))
        ]
        rebinds = self._problem_history[1:]
        ri = 0
        replayed = 0
        for instr in instrs:
            while ri < len(rebinds) and rebinds[ri][0] < instr.seq:
                calls.append((_w_set_problem, (key, rebinds[ri][1])))
                ri += 1
            if instr.op == "spec":
                calls.append((_w_run_instr, (key, instr.seq, instr.spec)))
                replayed += 1
            else:  # pred-install: redistributed predecessor vectors
                calls.append((_w_install_pred, (key, instr.slot, instr.payload)))
        while ri < len(rebinds):
            calls.append((_w_set_problem, (key, rebinds[ri][1])))
            ri += 1
        return calls, replayed

    def _execute_instr(self, instr: Instruction) -> SpecResult:
        """Runner-crew transport: one dispatch per pulled instruction."""
        return self.pool.call_slots(
            [(instr.slot, _w_run_instr, (self.session_key, instr.seq, instr.spec))]
        )[0]

    def run(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> list[SpecResult]:
        tracer = self.tracer
        step_no, instrs = self.program.add_superstep(specs, label)
        if self._crew is not None:
            if not tracer:
                return self._crew.run_step(instrs)
            t0 = time.perf_counter()
            with tracer.context(superstep=step_no, label=label):
                results = self._crew.run_step(instrs)
            tracer.add_span(
                "superstep",
                t0,
                time.perf_counter(),
                superstep=step_no,
                label=label,
                procs=len(specs),
            )
            return results
        # Classic path: the whole superstep as one batched dispatch per
        # worker — one round trip per barrier.
        calls = [
            (instr.slot, _w_run_instr, (self.session_key, instr.seq, instr.spec))
            for instr in instrs
        ]
        if not tracer:
            results = self.pool.call_slots(calls)
        else:
            t0 = time.perf_counter()
            # The context tags the pool's per-worker dispatch spans with
            # this superstep's identity.
            with tracer.context(superstep=step_no, label=label):
                results = self.pool.call_slots(calls)
            tracer.add_span(
                "superstep",
                t0,
                time.perf_counter(),
                superstep=step_no,
                label=label,
                procs=len(specs),
            )
        # Record only after the barrier: an in-flight instruction must
        # not be part of the replay that precedes its own re-send.
        for instr, result in zip(instrs, results):
            self.program.record_result(instr.seq, result)
        return results

    def install_path(self, path: np.ndarray) -> None:
        # The driver owns the path array; workers keep their own segment
        # resident (written by their backward specs), so nothing to do.
        pass

    def prepare_backward(
        self,
        backward_ranges: Sequence[StageRange],
        forward_ranges: Sequence[StageRange],
    ) -> None:
        """One-time pred redistribution for a repartitioned backward phase.

        Worker slot ``p`` holds predecessors for its *forward* range; if
        its backward range covers other stages, fetch them from their
        forward owners and install them — driver-mediated, once, before
        the backward supersteps start.
        """
        owner_of: dict[int, int] = {}
        owned: dict[int, set[int]] = {}
        for rg in forward_ranges:
            stages = set(rg.stages())
            owned[rg.proc] = stages
            for i in stages:
                owner_of[i] = rg.proc
        needs: dict[int, list[int]] = {}
        for rg in backward_ranges:
            missing = sorted(set(rg.stages()) - owned.get(rg.proc, set()))
            if missing:
                needs[rg.proc] = missing
        if not needs:
            return
        key = self.session_key
        # Gather each missing stage from its forward owner...
        fetch: dict[int, list[int]] = {}
        for stages in needs.values():
            for i in stages:
                fetch.setdefault(owner_of[i], []).append(i)
        gathered: dict[int, np.ndarray] = {}
        for chunk in self.pool.call_slots(
            [
                (owner, _w_collect, (key, owner, "pred", stages))
                for owner, stages in fetch.items()
            ]
        ):
            gathered.update(chunk)
        # ...and install it on the slot whose backward range needs it.
        installs = {
            slot: {i: gathered[i] for i in stages}
            for slot, stages in needs.items()
        }
        self.pool.call_slots(
            [
                (slot, _w_install_pred, (key, slot, mapping))
                for slot, mapping in installs.items()
            ]
        )
        # Journal the installs (driver-mediated, already barriered):
        # recorded immediately so crash recovery replays them in slot
        # order between the forward and backward instruction suffixes.
        for slot, mapping in installs.items():
            instr = self.program.add_install(slot, mapping)
            self.program.record_result(instr.seq)

    # -- gathers --------------------------------------------------------
    def _gather(self, kind: str) -> list[np.ndarray | None]:
        out: list[np.ndarray | None] = [None] * (self.num_stages + 1)
        if kind == "s":
            out[0] = self.problem.initial_vector()
        ranges = self.forward_ranges
        key = self.session_key
        for chunk in self.pool.call_slots(
            [
                (rg.proc, _w_collect, (key, rg.proc, kind, list(rg.stages())))
                for rg in ranges
            ]
        ):
            for i, v in chunk.items():
                out[i] = v
        return out

    def stage_vectors(self) -> list[np.ndarray | None]:
        return self._gather("s")

    def pred_vectors(self) -> list[np.ndarray | None]:
        return self._gather("pred")

    def finish(self) -> None:
        # The program journal belongs to this runtime; a stale hook
        # would replay the wrong state into a worker respawned during a
        # later solve.  Idempotent: the serve layer finishes sessions
        # both on eviction and on service close.
        if self._finished:
            return
        self._finished = True
        if self._crew is not None:
            self._crew.close()
            if hasattr(self.pool, "remove_teardown_hook"):
                self.pool.remove_teardown_hook(self._crew.close)
            self._crew = None
        # Unhook before dropping: a worker respawn triggered by the drop
        # broadcast must not first replay the session it is dropping.
        if hasattr(self.pool, "remove_rebuild_hook"):
            self.pool.remove_rebuild_hook(self)
        elif hasattr(self.pool, "set_rebuild_hook"):
            self.pool.set_rebuild_hook(None)
        if self.tracer and hasattr(self.pool, "set_tracer"):
            self.pool.set_tracer(None)
        try:
            self.pool.broadcast(_w_drop, (self.session_key,))
        except ExecutorError:
            # Closed or broken pool: the workers (and their sessions)
            # are gone anyway.
            pass
