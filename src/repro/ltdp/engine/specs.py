"""Declarative superstep specs — the *plan* half of the plan/runtime split.

The parallel LTDP algorithm (paper Figs 4/5) is pure BSP: each
superstep is a set of per-processor jobs whose cross-processor inputs
were all snapshotted at the previous barrier.  This module captures one
such job as a :class:`SuperstepSpec` — a frozen dataclass naming the
stage range, the boundary input carried across the barrier, and (for
fix-up supersteps) the convergence predicate parameters.  Specs are
pure data: picklable, free of closures, and independent of *where* they
run.

Runtimes (see :mod:`repro.ltdp.engine.runtime` and
:mod:`repro.ltdp.engine.poolrt`) execute a spec by calling
:meth:`SuperstepSpec.execute` against a :class:`StageStore` — an
abstract view of the per-stage vectors the executing processor can see.
``execute`` never mutates the store; all writes are collected in the
returned :class:`SpecResult` and applied after the barrier, which is
exactly what makes serial / thread / forked-process / persistent-pool
execution bit-identical.

The store contract mirrors the paper's data distribution: a spec only
ever reads stages inside its own ``(lo .. hi]`` range (resident on its
processor) plus the boundary value embedded in the spec itself (the
one message its left/right neighbour sent at the barrier).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Protocol

import numpy as np

from repro.exceptions import ZeroVectorError
from repro.ltdp.delta import BoundaryDiff, changed_delta_count, delta_fixup_work
from repro.ltdp.problem import LTDPProblem
from repro.semiring.vector import are_parallel, is_zero_vector, random_nonzero_vector

__all__ = [
    "StageStore",
    "SpecResult",
    "SuperstepSpec",
    "ForwardInitSpec",
    "ForwardFixupSpec",
    "DeltaRepairSpec",
    "ObjectiveSpec",
    "BackwardInitSpec",
    "BackwardFixupSpec",
]


class StageStore(Protocol):
    """What a spec may read while executing: its processor's resident state."""

    def get_s(self, i: int) -> np.ndarray:
        """Stored stage vector ``s_i`` (as of the last barrier)."""
        ...

    def get_pred(self, i: int) -> np.ndarray:
        """Stored predecessor vector of stage ``i``."""
        ...

    def get_path(self, i: int) -> int:
        """Stored backward-path entry at stage ``i`` (as of the last barrier)."""
        ...

    def get_fixup_state(self, i: int):
        """Resident §4.7 delta state: stage ``i``'s cached kernel
        evaluation (``None`` when the stage has not been evaluated with
        state capture yet)."""
        ...

    def get_fixup_input(self, lo: int) -> np.ndarray | None:
        """The input boundary last consumed by a fix-up sweep starting
        at stage ``lo`` — the resident base a :class:`BoundaryDiff`
        applies to.  ``None`` before the first fix-up dispatch."""
        ...


@dataclass
class SpecResult:
    """Everything one spec execution produced.

    ``s_updates`` / ``pred_updates`` are the stage-resident writes: a
    runtime with worker-resident state applies them *in the worker* and
    strips them before replying, so only ``boundary`` (one stage-width
    vector) and the scalar fields cross the wire per superstep — the
    paper's O(boundary) communication model.  ``path_updates`` are the
    backward phase's output (integers, i.e. the answer itself) and are
    always returned to the driver.
    """

    proc: int
    work: float = 0.0
    s_updates: dict[int, np.ndarray] = field(default_factory=dict)
    pred_updates: dict[int, np.ndarray] = field(default_factory=dict)
    path_updates: dict[int, int] = field(default_factory=dict)
    stages_done: int = 0
    converged: bool = True
    #: The executing processor's range-final stage vector after this
    #: superstep — the only vector its right neighbour ever needs.
    boundary: np.ndarray | None = None
    #: ``(value, stage, cell)`` candidate from an :class:`ObjectiveSpec`.
    objective: tuple[float, int, int] | None = None
    #: Resident §4.7 delta state: per-stage cached kernel evaluations
    #: produced by this spec (stage-resident, stripped on the pool wire).
    fixup_state_updates: dict[int, object] = field(default_factory=dict)
    #: ``(lo, boundary)`` — the input boundary this fix-up sweep
    #: consumed, stored resident so the next round's
    #: :class:`~repro.ltdp.delta.BoundaryDiff` can apply against it.
    fixup_input: tuple[int, np.ndarray] | None = None
    #: Delta-space cells this sweep actually changed relative to the
    #: resident stage vectors (§4.7 accounting; reported by
    #: :class:`DeltaRepairSpec` so a serve-layer cache hit can prove it
    #: repaired rather than recomputed).  Scalar — crosses the pool wire.
    repaired_deltas: int = 0

    def stripped(self) -> "SpecResult":
        """Copy with the stage-resident payloads removed (pool wire format)."""
        return replace(self, s_updates={}, pred_updates={}, fixup_state_updates={}, fixup_input=None)


@dataclass(frozen=True)
class SuperstepSpec:
    """One processor's job within one barrier-delimited superstep."""

    proc: int  # 1-based processor id, matching the paper
    lo: int  # exclusive lower stage bound
    hi: int  # inclusive upper stage bound

    def stages(self) -> range:
        return range(self.lo + 1, self.hi + 1)

    def execute(self, problem: LTDPProblem, store: StageStore) -> SpecResult:
        raise NotImplementedError


@dataclass(frozen=True)
class ForwardInitSpec(SuperstepSpec):
    """Fig 4 lines 6-11: sweep the range from ``s_0`` (proc 1) or ``nz``.

    ``seed`` is the processor's spawned :class:`numpy.random.SeedSequence`
    child; the same child produces the same ``nz`` vector on every
    runtime, which is what keeps runs reproducible across executors.
    """

    seed: np.random.SeedSequence | None = None
    nz_low: float = -10.0
    nz_high: float = 10.0
    nz_integer: bool = True
    #: Cache each stage's kernel evaluation state for later sparse
    #: fix-up (set when the problem has a sparse kernel and delta mode
    #: is on).  Costs memory, never changes the computed vectors.
    capture_state: bool = False
    #: Dispatch the whole range through the raw-speed kernel tier when a
    #: registered kernel accepts it (bit-identical by gate; see
    #: :mod:`repro.kernels`).  Falls back to the dense loop on ``None``.
    use_kernels: bool = False

    def execute(self, problem: LTDPProblem, store: StageStore) -> SpecResult:
        if self.proc == 1:
            v = problem.initial_vector()
        else:
            rng = np.random.default_rng(self.seed)
            v = random_nonzero_vector(
                problem.stage_width(self.lo),
                rng,
                low=self.nz_low,
                high=self.nz_high,
                integer=self.nz_integer,
            )
        out_s: dict[int, np.ndarray] = {}
        out_pred: dict[int, np.ndarray] = {}
        out_states: dict[int, object] = {}
        work = 0.0
        if self.use_kernels:
            from repro.kernels import block_sweep

            sweep = block_sweep(
                problem, self.lo, self.hi, v, capture_state=self.capture_state
            )
            if sweep is not None:
                if sweep.zero_index is not None:
                    raise ZeroVectorError(
                        f"stage {self.lo + 1 + sweep.zero_index} produced an "
                        "all--inf vector during the parallel forward pass"
                    )
                for r, i in enumerate(self.stages()):
                    out_s[i] = sweep.values[r]
                    out_pred[i] = sweep.preds[r]
                    if self.capture_state:
                        out_states[i] = sweep.states[r]
                    # Sequential accumulation mirrors the dense loop's
                    # float summation order exactly.
                    work += float(sweep.costs[r])
                return SpecResult(
                    proc=self.proc,
                    work=work,
                    s_updates=out_s,
                    pred_updates=out_pred,
                    boundary=out_s[self.hi],
                    fixup_state_updates=out_states,
                )
        for i in self.stages():
            if self.capture_state:
                v, p, st = problem.apply_stage_with_state(i, v)
                out_states[i] = st
            else:
                v, p = problem.apply_stage_with_pred(i, v)
            if is_zero_vector(v):
                raise ZeroVectorError(
                    f"stage {i} produced an all--inf vector during the "
                    "parallel forward pass"
                )
            out_s[i] = v
            out_pred[i] = p
            work += problem.stage_cost(i)
        return SpecResult(
            proc=self.proc,
            work=work,
            s_updates=out_s,
            pred_updates=out_pred,
            boundary=out_s[self.hi],
            fixup_state_updates=out_states,
        )


@dataclass(frozen=True)
class ForwardFixupSpec(SuperstepSpec):
    """Fig 4 lines 13-27: re-sweep from the left neighbour's boundary.

    ``boundary`` is the neighbour's range-final vector as advertised at
    the barrier — shipped either dense or, in delta mode, as a
    :class:`~repro.ltdp.delta.BoundaryDiff` against the input boundary
    the processor consumed last round (resident in its store).  The
    convergence predicate is tropical parallelism against the stored
    vectors (:meth:`is_converged`), with the problem's tolerance baked
    into the spec.

    In delta mode (``use_delta``), problems with a sparse kernel
    (``sparse``) propagate only the changed positions through each
    resident stage via
    :meth:`~repro.ltdp.problem.LTDPProblem.apply_stage_sparse`, falling
    back to the dense kernel past the ``crossover`` changed fraction;
    the charged work is the cells actually touched either way.
    Problems without a sparse kernel run dense and charge the modeled
    §4.7 cost (:func:`~repro.ltdp.delta.delta_fixup_work`).
    """

    boundary: np.ndarray | None = None
    tol: float = 0.0
    use_delta: bool = False
    #: Sparse alternative to ``boundary``: applied to the resident copy
    #: of last round's input boundary (``store.get_fixup_input(lo)``).
    boundary_diff: BoundaryDiff | None = None
    #: Run the problem's sparse fix-up kernel (delta mode + the problem
    #: advertises ``supports_sparse_fixup``).
    sparse: bool = False
    #: Changed-input fraction above which the sparse kernel defers to
    #: the dense one.
    crossover: float = 0.25
    #: Dispatch through the raw-speed kernel tier (dense mode only; the
    #: sparse §4.7 path repairs against resident per-stage state, which
    #: a block dispatch cannot consult).
    use_kernels: bool = False

    def is_converged(self, new: np.ndarray, stored: np.ndarray) -> bool:
        """The fix-up convergence predicate (§4.2 rank convergence)."""
        return are_parallel(new, stored, tol=self.tol)

    def execute(self, problem: LTDPProblem, store: StageStore) -> SpecResult:
        if self.boundary_diff is not None:
            base = store.get_fixup_input(self.lo)
            if base is None:
                raise ZeroVectorError(
                    f"processor {self.proc} received a boundary diff but "
                    "has no resident input boundary to apply it to"
                )
            v = self.boundary_diff.apply(base)
        else:
            v = np.asarray(self.boundary, dtype=np.float64)
        in_boundary = v
        new_s: dict[int, np.ndarray] = {}
        new_pred: dict[int, np.ndarray] = {}
        new_states: dict[int, object] = {}
        work = 0.0
        stages_done = 0
        converged = False
        if self.use_kernels and not self.sparse:
            sweep_result = self._execute_block(problem, store, v, in_boundary)
            if sweep_result is not None:
                return sweep_result
        for i in self.stages():
            sparse_cells: float | None = None
            if self.sparse:
                res = problem.apply_stage_sparse(
                    i, v, store.get_fixup_state(i), self.crossover
                )
                if res is not None:
                    v, p, st, sparse_cells = res
                    new_states[i] = st
            if sparse_cells is None:
                if self.sparse:
                    # Dense fallback (no cache yet, or past crossover):
                    # recapture state so the next round can go sparse.
                    v, p, st = problem.apply_stage_with_state(i, v)
                    new_states[i] = st
                else:
                    v, p = problem.apply_stage_with_pred(i, v)
            if is_zero_vector(v):
                raise ZeroVectorError(
                    f"stage {i} produced an all--inf vector in fix-up"
                )
            new_pred[i] = p
            old = store.get_s(i)
            if sparse_cells is not None:
                work += sparse_cells
            elif self.use_delta and not self.sparse:
                # Modeled §4.7 cost for problems without a sparse kernel.
                work += delta_fixup_work(old, v)
            else:
                work += problem.stage_cost(i)
            stages_done += 1
            if self.is_converged(v, old):
                converged = True
                break
            new_s[i] = v
        # On early convergence the stored suffix (including the range
        # final) is untouched, so the advertised boundary is the stored
        # one; otherwise the sweep rewrote through the end of the range.
        boundary = new_s[self.hi] if self.hi in new_s else store.get_s(self.hi)
        return SpecResult(
            proc=self.proc,
            work=work,
            s_updates=new_s,
            pred_updates=new_pred,
            stages_done=stages_done,
            converged=converged,
            boundary=boundary,
            fixup_state_updates=new_states,
            fixup_input=(self.lo, in_boundary) if self.use_delta else None,
        )

    def _execute_block(self, problem, store, v, in_boundary) -> SpecResult | None:
        """Kernel-tier fix-up sweep: one dispatch, then the same per-stage
        convergence/zero/work walk as the dense loop, in dense order."""
        from repro.kernels import block_sweep

        sweep = block_sweep(problem, self.lo, self.hi, v, capture_state=False)
        if sweep is None:
            return None
        new_s: dict[int, np.ndarray] = {}
        new_pred: dict[int, np.ndarray] = {}
        work = 0.0
        stages_done = 0
        converged = False
        for r, i in enumerate(self.stages()):
            if sweep.zero_index is not None and r == sweep.zero_index:
                raise ZeroVectorError(
                    f"stage {i} produced an all--inf vector in fix-up"
                )
            nv = sweep.values[r]
            new_pred[i] = sweep.preds[r]
            old = store.get_s(i)
            if self.use_delta:
                work += delta_fixup_work(old, nv)
            else:
                work += float(sweep.costs[r])
            stages_done += 1
            if self.is_converged(nv, old):
                converged = True
                break
            new_s[i] = nv
        boundary = new_s[self.hi] if self.hi in new_s else store.get_s(self.hi)
        return SpecResult(
            proc=self.proc,
            work=work,
            s_updates=new_s,
            pred_updates=new_pred,
            stages_done=stages_done,
            converged=converged,
            boundary=boundary,
            fixup_input=(self.lo, in_boundary) if self.use_delta else None,
        )


@dataclass(frozen=True)
class DeltaRepairSpec(ForwardFixupSpec):
    """Repair a *resident* solve against a mutated problem (serve cache hit).

    The serve layer keeps a canonical solve resident in the workers and
    answers a near-duplicate request — same family and shape, a few
    mutated stages — by rebinding the worker-side problem and sweeping
    each dirtied range once with this spec.  It is a
    :class:`ForwardFixupSpec` with two twists:

    - ``dirty`` names the stages whose transform changed.  Those stages
      are recomputed **densely** (their cached §4.7 kernel state
      describes the *old* transform and must be refreshed); clean
      stages keep the sparse path, which costs ~nothing while the
      propagated boundary is unchanged.
    - The rank-convergence early exit is suppressed until the sweep has
      passed the last dirty stage: before it, "new vector parallel to
      stored" only means the perturbation has not been *reached* yet,
      not that it has died out.

    Past the last dirty stage the transforms match the resident state
    again, so the standard fix-up argument applies unchanged and the
    downstream ranges are handled by the ordinary fix-up loop.
    ``repaired_deltas`` in the result counts the delta-space cells the
    sweep actually changed — the serve layer's proof that a cache hit
    took the repair path.
    """

    dirty: tuple[int, ...] = ()

    def execute(self, problem: LTDPProblem, store: StageStore) -> SpecResult:
        if self.boundary_diff is not None:
            base = store.get_fixup_input(self.lo)
            if base is None:
                raise ZeroVectorError(
                    f"processor {self.proc} received a boundary diff but "
                    "has no resident input boundary to apply it to"
                )
            v = self.boundary_diff.apply(base)
        else:
            v = np.asarray(self.boundary, dtype=np.float64)
        in_boundary = v
        dirty = frozenset(self.dirty)
        # Stage indices, not tropical values: an empty dirty set means
        # "nothing forced dense", so convergence may fire from the start.
        last_dirty = max(dirty, default=self.lo)
        new_s: dict[int, np.ndarray] = {}
        new_pred: dict[int, np.ndarray] = {}
        new_states: dict[int, object] = {}
        work = 0.0
        stages_done = 0
        converged = False
        repaired = 0
        for i in self.stages():
            sparse_cells: float | None = None
            if self.sparse and i not in dirty:
                res = problem.apply_stage_sparse(
                    i, v, store.get_fixup_state(i), self.crossover
                )
                if res is not None:
                    v, p, st, sparse_cells = res
                    new_states[i] = st
            if sparse_cells is None:
                if self.sparse:
                    # Dirty stage, cache miss, or past crossover: dense
                    # recompute with state capture so later sparse rounds
                    # see the *new* transform's cached evaluation.
                    v, p, st = problem.apply_stage_with_state(i, v)
                    new_states[i] = st
                else:
                    v, p = problem.apply_stage_with_pred(i, v)
            if is_zero_vector(v):
                raise ZeroVectorError(
                    f"stage {i} produced an all--inf vector in delta repair"
                )
            new_pred[i] = p
            old = store.get_s(i)
            if sparse_cells is not None:
                work += sparse_cells
            elif self.use_delta and not self.sparse:
                work += delta_fixup_work(old, v)
            else:
                work += problem.stage_cost(i)
            stages_done += 1
            if old.shape == v.shape:
                repaired += changed_delta_count(old, v)
            if i > last_dirty and self.is_converged(v, old):
                converged = True
                break
            new_s[i] = v
        boundary = new_s[self.hi] if self.hi in new_s else store.get_s(self.hi)
        return SpecResult(
            proc=self.proc,
            work=work,
            s_updates=new_s,
            pred_updates=new_pred,
            stages_done=stages_done,
            converged=converged,
            boundary=boundary,
            fixup_state_updates=new_states,
            fixup_input=(self.lo, in_boundary) if self.use_delta else None,
            repaired_deltas=repaired,
        )


@dataclass(frozen=True)
class ObjectiveSpec(SuperstepSpec):
    """Scan the resident stage vectors for the shift-invariant objective.

    Processor 1 additionally covers stage 0 (``include_initial``), the
    same convention as the sequential solver's reduction.
    """

    include_initial: bool = False

    def execute(self, problem: LTDPProblem, store: StageStore) -> SpecResult:
        start = 0 if self.include_initial else self.lo + 1
        best: tuple[float, int, int] | None = None
        for i in range(start, self.hi + 1):
            val, cell = problem.stage_objective(i, np.asarray(store.get_s(i)))
            if best is None or val > best[0]:
                best = (val, i, cell)
        work = float(
            sum(problem.stage_objective_cost(i) for i in range(start, self.hi + 1))
        )
        return SpecResult(proc=self.proc, work=work, objective=best)


@dataclass(frozen=True)
class BackwardInitSpec(SuperstepSpec):
    """Fig 5 initial traversal: follow predecessors right-to-left.

    ``start_index`` is 0 for interior processors (Fig 5 line 8's
    assumption) and the objective cell for the last processor.
    """

    start_index: int = 0

    def execute(self, problem: LTDPProblem, store: StageStore) -> SpecResult:
        x = self.start_index
        out: dict[int, int] = {}
        for i in range(self.hi, self.lo, -1):
            x = int(store.get_pred(i)[x])
            out[i - 1] = x
        return SpecResult(
            proc=self.proc,
            work=float(self.hi - self.lo),
            path_updates=out,
        )


@dataclass(frozen=True)
class BackwardFixupSpec(SuperstepSpec):
    """Fig 5 fix-up: re-traverse from the right neighbour's corrected index.

    Convergence predicate: the traversal agrees with the stored path
    entry (Lemma 5 — guaranteed once the backward partial products
    reach rank 1).
    """

    boundary_index: int = 0

    def execute(self, problem: LTDPProblem, store: StageStore) -> SpecResult:
        x = self.boundary_index
        updates: dict[int, int] = {}
        work = 0.0
        converged = False
        for i in range(self.hi, self.lo, -1):
            x = int(store.get_pred(i)[x])
            work += 1.0
            if store.get_path(i - 1) == x:
                converged = True
                break
            updates[i - 1] = x
        return SpecResult(
            proc=self.proc,
            work=work,
            path_updates=updates,
            converged=converged,
        )
