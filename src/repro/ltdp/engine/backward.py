"""Objective-reduction and backward-phase planners (paper Fig 5).

Like :mod:`repro.ltdp.engine.forward`, this module only *plans*: it
emits :class:`ObjectiveSpec` / :class:`BackwardInitSpec` /
:class:`BackwardFixupSpec` supersteps, applies the returned path
updates to the driver-owned path array, and records metrics.  The
per-iteration message is a single path index (8 bytes) per neighbour
pair — the backward phase's entire communication.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.exceptions import ConvergenceError, ProblemDefinitionError
from repro.ltdp.engine.runtime import SuperstepRuntime
from repro.ltdp.engine.specs import (
    BackwardFixupSpec,
    BackwardInitSpec,
    ObjectiveSpec,
)
from repro.ltdp.partition import StageRange, partition_stages
from repro.ltdp.problem import LTDPProblem
from repro.machine.metrics import CommEvent, RunMetrics, SuperstepRecord

__all__ = ["objective_phase", "backward_parallel_phase", "backward_serial_phase"]


def objective_phase(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
) -> tuple[float, int, int]:
    """Reduce the shift-invariant per-stage objective across processors.

    One extra superstep: each processor scans its own stored stage
    vectors (processor 1 also covers stage 0); the global reduction
    breaks ties toward the earliest stage — the same deterministic rule
    the sequential solver uses.
    """
    specs = [
        ObjectiveSpec(
            proc=rg.proc, lo=rg.lo, hi=rg.hi, include_initial=rg.proc == 1
        )
        for rg in ranges
    ]
    t0 = time.perf_counter()
    results = runtime.run(specs, label="objective")
    wall = time.perf_counter() - t0
    metrics.record(
        SuperstepRecord(
            label="objective",
            work=[r.work for r in results],
            wall_seconds=wall,
            phase="forward",
            step=runtime.step_no,
        )
    )
    best_val, best_stage, best_cell = None, 0, 0
    for result in results:
        if result.objective is None:
            continue
        val, stage, cell = result.objective
        if best_val is None or val > best_val or (val == best_val and stage < best_stage):
            best_val, best_stage, best_cell = val, stage, cell
    if best_val is None:
        raise ProblemDefinitionError(
            "objective reduction over "
            f"{len(results)} processors covering stages 0..{ranges[-1].hi} "
            "produced no candidate: every ObjectiveSpec returned None, so "
            f"{type(problem).__name__}.stage_objective yielded no value for "
            "any stage — a tracks_stage_objective problem must define the "
            "objective on at least one stage"
        )
    return best_val, best_stage, best_cell


def backward_parallel_phase(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
    *,
    start_stage: int | None = None,
    start_cell: int = 0,
) -> np.ndarray:
    """Fig 5: parallel predecessor traversal with its own fix-up loop.

    ``path[i]`` = optimal subproblem index at stage ``i``.  Every
    processor starts its traversal assuming index 0 at its right
    boundary (Fig 5 line 8); the last processor's assumption is exact
    by the solution convention (or it starts from the objective cell
    for stage-objective problems).  Fix-up re-traverses from the right
    neighbour's corrected boundary until an entry matches (Lemma 5
    ensures this happens once the backward partial products reach
    rank 1).
    """
    n = problem.num_stages
    total_procs = len(ranges)
    if start_stage is None:
        start_stage = n
    path = np.zeros(n + 1, dtype=np.int64)
    path[start_stage] = start_cell
    if start_stage == 0:
        return path
    # The traceback only covers stages 1..start_stage; repartition them
    # over the same processor pool (idle processors contribute 0 work).
    b_ranges = partition_stages(start_stage, total_procs)
    num_procs = len(b_ranges)
    runtime.prepare_backward(b_ranges, ranges)
    runtime.install_path(path)

    def pad(work_rows: list[float]) -> list[float]:
        return work_rows + [0.0] * (total_procs - len(work_rows))

    specs = [
        BackwardInitSpec(
            proc=rg.proc,
            lo=rg.lo,
            hi=rg.hi,
            start_index=start_cell if rg.proc == num_procs else 0,
        )
        for rg in b_ranges
    ]
    t0 = time.perf_counter()
    results = runtime.run(specs, label="backward")
    wall = time.perf_counter() - t0
    for result in results:
        for idx, val in result.path_updates.items():
            path[idx] = val
    metrics.record(
        SuperstepRecord(
            label="backward",
            # The runtime's reported work, not the planned stage count —
            # the same convention every other superstep record follows.
            work=pad([result.work for result in results]),
            wall_seconds=wall,
            phase="backward",
            step=runtime.step_no,
        )
    )

    if num_procs == 1:
        return path

    max_iters = (
        opts.max_fixup_iterations
        if opts.max_fixup_iterations is not None
        else num_procs + 1
    )
    iteration = 0
    # Convergence-aware scheduling, mirroring the forward loop: a
    # processor whose last traversal converged and whose boundary index
    # is unchanged would deterministically reproduce its stored path
    # segment, so it is dropped from the superstep entirely.
    last_bidx: dict[int, int] = {}
    last_bconv: dict[int, bool] = {}
    while True:
        iteration += 1
        if iteration > max_iters:
            raise ConvergenceError(
                f"backward fix-up did not converge within {max_iters} iterations"
            )
        # Processors 1..P-1 re-traverse from the boundary index owned by
        # their right neighbour's region (snapshot = barrier semantics).
        specs = []
        for rg in b_ranges[:-1]:
            bidx = int(path[rg.hi])
            if last_bconv.get(rg.proc, False) and last_bidx.get(rg.proc) == bidx:
                continue
            specs.append(
                BackwardFixupSpec(
                    proc=rg.proc, lo=rg.lo, hi=rg.hi, boundary_index=bidx
                )
            )
            last_bidx[rg.proc] = bidx
        if not specs:
            # Defensive: the loop normally exits via all_conv below.
            iteration -= 1
            break
        comm = [
            CommEvent(src=sp.proc + 1, dst=sp.proc, num_bytes=8) for sp in specs
        ]
        label = f"bwd-fixup[{iteration}]"
        t0 = time.perf_counter()
        results = runtime.run(specs, label=label)
        wall = time.perf_counter() - t0
        work_row = [0.0] * total_procs  # non-dispatched processors idle
        all_conv = True
        for result in results:
            for idx, val in result.path_updates.items():
                path[idx] = val
            work_row[result.proc - 1] = result.work
            last_bconv[result.proc] = result.converged
            all_conv &= result.converged
        metrics.bwd_fixup_dispatched.append(len(specs))
        metrics.record(
            SuperstepRecord(
                label=label,
                work=work_row,
                comm=comm,
                wall_seconds=wall,
                phase="backward",
                step=runtime.step_no,
            )
        )
        if all_conv:
            break
    metrics.backward_fixup_iterations = iteration
    return path


def backward_serial_phase(
    problem: LTDPProblem,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
    num_procs: int,
    *,
    start_stage: int | None = None,
    start_cell: int = 0,
) -> np.ndarray:
    """Sequential traceback (Fig 2 backward) recorded as processor-1 work.

    Runs in the driver; runtimes with worker-resident state first gather
    the predecessor vectors (a one-time O(n·width) transfer — this is
    the non-default path, kept for comparison runs).
    """
    n = problem.num_stages
    if start_stage is None:
        start_stage = n
    pred_store = runtime.pred_vectors()
    path = np.zeros(n + 1, dtype=np.int64)
    path[start_stage] = start_cell
    x = start_cell
    t0 = time.perf_counter()
    for i in range(start_stage, 0, -1):
        x = int(pred_store[i][x])
        path[i - 1] = x
    wall = time.perf_counter() - t0
    work_row = [0.0] * num_procs
    work_row[0] = float(start_stage)
    metrics.record(
        SuperstepRecord(
            label="backward", work=work_row, wall_seconds=wall, phase="backward"
        )
    )
    return path
