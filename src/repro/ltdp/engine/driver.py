"""Entry point of the parallel LTDP engine: options + ``solve_parallel``.

The driver wires the plan layer (phase planners emitting declarative
superstep specs) to the runtime layer (where the specs execute):

1. partition stages over virtual processors;
2. pick a runtime from the executor's capabilities —
   :class:`~repro.ltdp.engine.runtime.LocalRuntime` for closure-running
   executors (serial / thread / fork-per-task),
   :class:`~repro.ltdp.engine.poolrt.PoolRuntime` for the persistent
   :class:`~repro.machine.pool.PoolProcessExecutor`;
3. run the forward phase, the optional objective reduction, and the
   backward phase, collecting :class:`~repro.machine.metrics.RunMetrics`
   (simulated work *and* real wall-clock per superstep);
4. price the exact score and assemble the :class:`LTDPSolution`.

Results are bit-identical across every runtime: all cross-processor
inputs are snapshotted into the specs at each barrier (exactly what the
paper's barriers guarantee), and the spec execution bodies are shared
code.

The *exact-score epilogue* (ours, not in the paper) recovers the true
optimal value ``s_n[0]`` by pricing the traced path edge by edge: the
parallel forward phase only guarantees vectors parallel to the truth,
so the final vector's entries are offset by an unknown constant, but
path edge weights are offset-free.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.kernels import kernel_tier_enabled
from repro.ltdp.engine.backward import (
    backward_parallel_phase,
    backward_serial_phase,
    objective_phase,
)
from repro.ltdp.engine.forward import forward_phase
from repro.ltdp.engine.runner import DeliveryPolicy
from repro.ltdp.engine.runtime import LocalRuntime, SuperstepRuntime
from repro.ltdp.partition import partition_stages
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.ltdp.sequential import solve_sequential
from repro.machine.executor import Executor, SerialExecutor, executor_capability
from repro.machine.metrics import RunMetrics
from repro.machine.trace import Tracer
from repro.semiring.tropical import NEG_INF

__all__ = [
    "ParallelOptions",
    "solve_parallel",
    "run_solve_phases",
    "edge_weight_by_probe",
]

#: Shared no-op context for untraced phase blocks (nullcontext is stateless).
_NULL_CTX = nullcontext()


@dataclass
class ParallelOptions:
    """Knobs of the parallel solver.

    Attributes
    ----------
    num_procs:
        Requested processor count ``P`` (clamped to the stage count).
    executor:
        Where superstep tasks run; default serial (deterministic sim).
        Executors advertising ``supports_resident_state`` (the
        persistent worker pool) get the state-resident runtime.
    seed:
        Seeds the random ``nz`` start vectors (Fig 4 line 8).  The same
        seed gives the same vectors regardless of executor.
    nz_low, nz_high:
        Range of the entries of the ``nz`` vectors.
    nz_integer:
        Draw integer ``nz`` entries (default) so that integer-scored
        problems stay bit-exact; set False for continuous entries.
    use_delta:
        Run fix-up supersteps in §4.7 delta mode.  Boundary messages
        become sparse diffs (anchor offset + changed positions) against
        the receiver's resident copy whenever that is smaller, and
        problems with a sparse stage kernel (``supports_sparse_fixup``
        — banded LCS / Needleman–Wunsch) repair their resident stage
        vectors sparsely, diffing in delta space so only changed-delta
        neighbourhoods are recomputed, falling back to the dense kernel
        past ``delta_crossover``.  Results are
        bit-identical to dense mode; the recorded work is the cells
        actually touched (or the modeled delta cost for problems
        without a sparse kernel).
    delta_crossover:
        Changed-input fraction above which a sparse fix-up stage defers
        to the dense kernel (the crossover point where repairing the
        scan stops being cheaper than recomputing it).
    max_fixup_iterations:
        Safety bound; default ``P + 1`` (the loop provably terminates
        within ``P`` iterations — worst case it devolves to sequential).
    exact_score:
        Run the path-pricing epilogue so ``solution.score`` equals the
        true ``s_n[0]`` (costs one ``edge_weight`` per stage).
    parallel_backward:
        Use the Fig 5 parallel backward phase; else traceback serially.
    keep_stage_vectors:
        Return the stored per-stage vectors (each parallel to the true
        one) on the solution object.
    tracer:
        Optional :class:`~repro.machine.trace.Tracer` collecting real
        wall-clock spans of the solve (per-superstep, and per-worker
        dispatch breakdown on the pool runtime).  ``None`` (default)
        keeps every instrumentation site on its one-check fast path.
        Only multi-processor solves are traced; ``num_procs=1``
        devolves to the sequential solver.
    runners:
        Concurrent instruction runners pulling from the shared work
        queue (CLI ``--runners``).  1 (default) keeps the classic
        one-batch-per-barrier superstep loop; ``> 1`` spins up a
        :class:`~repro.ltdp.engine.runner.RunnerCrew` so a superstep's
        instructions execute concurrently as the queue releases them.
        Results are bit-identical either way.
    delivery:
        Optional :class:`~repro.ltdp.engine.runner.DeliveryPolicy`
        perturbing instruction delivery (duplicates, LIFO order) — the
        redelivery test suite's fault-injection knob.  A non-default
        policy forces the runner-crew path even with ``runners=1``.
    use_kernels:
        Raw-speed kernel tier (:mod:`repro.kernels`) tri-state.
        ``None`` (default, auto) dispatches whole stage-blocks through a
        registered block kernel whenever the executor declares the
        ``block_kernels`` capability and the problem's exact type has
        one, honouring the ``REPRO_KERNELS`` environment switch;
        ``False`` forces the dense per-stage path; ``True`` forces the
        tier on (ignoring the environment switch).  Results are
        bit-identical either way — every kernel dispatch is gated by an
        exactness cross-check with automatic dense fallback.
    """

    num_procs: int = 2
    executor: Executor = field(default_factory=SerialExecutor)
    seed: int | None = 0
    nz_low: float = -10.0
    nz_high: float = 10.0
    nz_integer: bool = True
    use_delta: bool = False
    delta_crossover: float = 0.25
    max_fixup_iterations: int | None = None
    exact_score: bool = True
    parallel_backward: bool = True
    keep_stage_vectors: bool = False
    tracer: Tracer | None = None
    runners: int = 1
    delivery: DeliveryPolicy | None = None
    use_kernels: bool | None = None

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")
        if self.runners < 1:
            raise ValueError(f"runners must be >= 1, got {self.runners}")
        if not self.nz_low < self.nz_high:
            raise ValueError("require nz_low < nz_high")
        if not 0.0 < self.delta_crossover <= 1.0:
            raise ValueError(
                f"delta_crossover must be in (0, 1], got {self.delta_crossover}"
            )


def edge_weight_by_probe(problem: LTDPProblem, i: int, j: int, k: int) -> float:
    """``A_i[j, k]`` recovered by applying stage ``i`` to the unit vector at ``k``.

    O(width) fallback used when a problem does not override
    ``edge_weight``; all shipped problems provide O(1) overrides.
    """
    w_in = problem.stage_width(i - 1)
    unit = np.full(w_in, NEG_INF)
    unit[k] = 0.0
    return float(problem.apply_stage(i, unit)[j])


def _edge_weight(problem: LTDPProblem, i: int, j: int, k: int) -> float:
    fn = getattr(problem, "edge_weight", None)
    if fn is not None:
        return float(fn(i, j, k))
    return edge_weight_by_probe(problem, i, j, k)


def _price_path(
    problem: LTDPProblem, path: np.ndarray, *, use_kernels: bool = False
) -> float:
    """Exact objective of a traced path: ``s_0[path[0]] + Σ_i A_i[path[i], path[i-1]]``."""
    if use_kernels:
        from repro.kernels import price_path_fast

        # Vectorized pricing over the preplanned edge-weight layout;
        # kernels only return a value when the summation is provably
        # exact in any order (integral weights), so this equals the
        # sequential scalar loop below bit-for-bit.
        fast = price_path_fast(problem, np.asarray(path))
        if fast is not None:
            return fast
    s0 = problem.initial_vector()
    total = float(s0[path[0]])
    for i in range(1, problem.num_stages + 1):
        total += _edge_weight(problem, i, int(path[i]), int(path[i - 1]))
    return total


def _make_runtime(
    executor: Executor,
    problem: LTDPProblem,
    ranges,
    tracer: Tracer | None = None,
    runners: int = 1,
    delivery: DeliveryPolicy | None = None,
) -> SuperstepRuntime:
    """Runtime selection: resident-state executors get the pool runtime."""
    if executor_capability(executor, "resident_state"):
        from repro.ltdp.engine.poolrt import PoolRuntime

        return PoolRuntime(
            executor,
            problem,
            ranges,
            tracer=tracer,
            runners=runners,
            delivery=delivery,
        )
    return LocalRuntime(
        executor, problem, tracer=tracer, runners=runners, delivery=delivery
    )


def run_solve_phases(
    problem: LTDPProblem,
    options: ParallelOptions,
    ranges,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
    *,
    forward_fn=None,
) -> LTDPSolution:
    """Run forward → objective → backward → score on a caller-owned runtime.

    The phase pipeline of :func:`solve_parallel`, split out so the serve
    layer can drive it repeatedly against one resident
    :class:`~repro.ltdp.engine.poolrt.PoolRuntime` (amortizing runtime
    construction and worker-state shipping across requests).  The caller
    owns the runtime's lifecycle — no ``finish()`` here — and, for pool
    executors, the folding of recovery-counter deltas into ``metrics``.

    ``forward_fn`` overrides the forward phase (the serve layer
    substitutes :func:`~repro.ltdp.engine.forward.repair_forward_phase`
    on cache hits); it must return the ``finals`` map that
    :func:`~repro.ltdp.engine.forward.forward_phase` would.
    """
    tracer = options.tracer
    with tracer.span("phase", phase="forward") if tracer else _NULL_CTX:
        if forward_fn is None:
            finals = forward_phase(problem, ranges, options, runtime, metrics)
        else:
            finals = forward_fn()

    obj_stage: int | None = None
    obj_cell: int | None = None
    obj_value: float | None = None
    if problem.tracks_stage_objective:
        with tracer.span("phase", phase="objective") if tracer else _NULL_CTX:
            obj_value, obj_stage, obj_cell = objective_phase(
                problem, ranges, options, runtime, metrics
            )

    # Explicit sentinel check: ``obj_cell or 0`` conflated "no objective
    # cell" (None) with a legitimate objective optimum at cell 0.
    start_cell = 0 if obj_cell is None else obj_cell
    with tracer.span("phase", phase="backward") if tracer else _NULL_CTX:
        if options.parallel_backward:
            path = backward_parallel_phase(
                problem,
                ranges,
                options,
                runtime,
                metrics,
                start_stage=obj_stage,
                start_cell=start_cell,
            )
        else:
            path = backward_serial_phase(
                problem,
                runtime,
                metrics,
                len(ranges),
                start_stage=obj_stage,
                start_cell=start_cell,
            )

    final = np.asarray(finals[ranges[-1].proc])
    if obj_value is not None:
        # The shift-invariant objective is exact even on offset vectors.
        score = float(obj_value)
    elif options.exact_score:
        score = _price_path(
            problem, path, use_kernels=kernel_tier_enabled(options, problem)
        )
    else:
        score = float(final[0])

    stage_vectors = None
    if options.keep_stage_vectors:
        stage_vectors = [np.asarray(v) for v in runtime.stage_vectors()]

    return LTDPSolution(
        path=path,
        score=score,
        final_vector=final,
        metrics=metrics,
        stage_vectors=stage_vectors,
        objective_stage=obj_stage,
        objective_cell=obj_cell,
    )


def solve_parallel(
    problem: LTDPProblem,
    options: ParallelOptions | None = None,
    **kwargs,
) -> LTDPSolution:
    """Solve an LTDP instance with the paper's parallel algorithm.

    ``kwargs`` are convenience overrides for :class:`ParallelOptions`
    fields, e.g. ``solve_parallel(prob, num_procs=8, seed=42)``.

    Returns an :class:`LTDPSolution` whose ``path`` is identical to the
    sequential algorithm's (deterministic tie-breaking makes this an
    equality, not just co-optimality) and whose ``metrics`` record the
    real per-processor work for the cost model.
    """
    if options is None:
        options = ParallelOptions(**kwargs)
    elif kwargs:
        raise TypeError("pass either a ParallelOptions object or keyword overrides")

    n = problem.num_stages
    if n < 1:
        raise ProblemDefinitionError("problem must have at least one stage")

    ranges = partition_stages(n, options.num_procs)
    num_procs = len(ranges)
    if num_procs == 1:
        solution = solve_sequential(
            problem,
            keep_stage_vectors=options.keep_stage_vectors,
            with_metrics=True,
        )
        return solution

    metrics = RunMetrics(
        num_procs=num_procs,
        num_stages=n,
        # The *max* stage width, matching the Table 1 convention
        # (convergence.py): the final stage of selector-terminated
        # problems has width 1, which would misreport throughput.
        stage_width=problem.max_stage_width(),
    )
    # Snapshot the pool's self-healing counters (if any) before the
    # runtime touches the workers, so the metrics report exactly the
    # respawns/retries/replays this solve caused.
    recovery = getattr(options.executor, "recovery_stats", None)
    recovery_base = recovery.snapshot() if recovery is not None else None
    tracer = options.tracer
    if tracer:
        tracer.event(
            "solve-start",
            problem=type(problem).__name__,
            num_stages=n,
            num_procs=num_procs,
            executor=type(options.executor).__name__,
        )
    runtime = _make_runtime(
        options.executor,
        problem,
        ranges,
        tracer,
        runners=options.runners,
        delivery=options.delivery,
    )
    try:
        solution = run_solve_phases(problem, options, ranges, runtime, metrics)
    finally:
        runtime.finish()
        if recovery is not None and recovery_base is not None:
            metrics.worker_respawns += recovery.respawns - recovery_base.respawns
            metrics.dispatch_retries += recovery.retries - recovery_base.retries
            metrics.replayed_supersteps += (
                recovery.replayed_supersteps - recovery_base.replayed_supersteps
            )

    return solution
