"""The parallel LTDP engine: plan, store, program and runner layers.

The engine splits the paper's parallel algorithm (Figs 4/5) into

- a **plan layer** that emits declarative
  :class:`~repro.ltdp.engine.specs.SuperstepSpec` objects — stage
  range, boundary input, convergence predicate — one per processor per
  barrier-delimited superstep
  (:mod:`~repro.ltdp.engine.forward`, :mod:`~repro.ltdp.engine.backward`,
  orchestrated by :mod:`~repro.ltdp.engine.driver`);
- a **state-store layer** (:mod:`~repro.ltdp.engine.store`) owning the
  stage/predecessor vectors and resident fix-up caches, driver-resident
  (:class:`~repro.ltdp.engine.store.DriverStore`) or worker-resident
  (:class:`~repro.ltdp.engine.store.WorkerStore`) behind one interface;
- a **program layer** (:mod:`~repro.ltdp.engine.program`) compiling
  spec lists into a sequence-numbered, dependency-edged
  :class:`~repro.ltdp.engine.program.InstructionProgram` whose
  instructions are idempotent under repeat delivery and whose recorded
  prefix doubles as the crash-recovery replay journal;
- a **runner layer** (:mod:`~repro.ltdp.engine.runner` +
  :mod:`repro.machine.workqueue`) where N concurrent runners pull
  ready instructions from a shared work queue — glued together by the
  runtimes (:class:`~repro.ltdp.engine.runtime.LocalRuntime` over any
  classic serial/thread/process
  :class:`~repro.machine.executor.Executor`, or
  :class:`~repro.ltdp.engine.poolrt.PoolRuntime` over the persistent
  :class:`~repro.machine.pool.PoolProcessExecutor`).

``solve_parallel`` keeps the exact signature and semantics it had when
it lived in :mod:`repro.ltdp.parallel`; that module remains the
stable import point.
"""

from repro.ltdp.engine.driver import (
    ParallelOptions,
    edge_weight_by_probe,
    solve_parallel,
)
from repro.ltdp.engine.program import Instruction, InstructionProgram
from repro.ltdp.engine.runner import DeliveryPolicy, RunnerCrew
from repro.ltdp.engine.runtime import LocalRuntime, SuperstepRuntime
from repro.ltdp.engine.specs import (
    BackwardFixupSpec,
    BackwardInitSpec,
    ForwardFixupSpec,
    ForwardInitSpec,
    ObjectiveSpec,
    SpecResult,
    SuperstepSpec,
)
from repro.ltdp.engine.state import EngineState
from repro.ltdp.engine.store import DriverStore, StateStore, WorkerStore

__all__ = [
    "ParallelOptions",
    "solve_parallel",
    "edge_weight_by_probe",
    "SuperstepRuntime",
    "LocalRuntime",
    "EngineState",
    "StateStore",
    "DriverStore",
    "WorkerStore",
    "Instruction",
    "InstructionProgram",
    "DeliveryPolicy",
    "RunnerCrew",
    "SuperstepSpec",
    "SpecResult",
    "ForwardInitSpec",
    "ForwardFixupSpec",
    "ObjectiveSpec",
    "BackwardInitSpec",
    "BackwardFixupSpec",
]
