"""The parallel LTDP engine: plan layer + runtime layer.

The engine splits the paper's parallel algorithm (Figs 4/5) into

- a **plan layer** that emits declarative
  :class:`~repro.ltdp.engine.specs.SuperstepSpec` objects — stage
  range, boundary input, convergence predicate — one per processor per
  barrier-delimited superstep
  (:mod:`~repro.ltdp.engine.forward`, :mod:`~repro.ltdp.engine.backward`,
  orchestrated by :mod:`~repro.ltdp.engine.driver`), and
- a **runtime layer** that executes those specs: in-process against a
  shared store (:class:`~repro.ltdp.engine.runtime.LocalRuntime`, which
  wraps any classic serial/thread/process
  :class:`~repro.machine.executor.Executor`) or against per-worker
  resident state on a persistent process pool
  (:class:`~repro.ltdp.engine.poolrt.PoolRuntime` over
  :class:`~repro.machine.pool.PoolProcessExecutor`).

``solve_parallel`` keeps the exact signature and semantics it had when
it lived in :mod:`repro.ltdp.parallel`; that module remains the
stable import point.
"""

from repro.ltdp.engine.driver import (
    ParallelOptions,
    edge_weight_by_probe,
    solve_parallel,
)
from repro.ltdp.engine.runtime import LocalRuntime, SuperstepRuntime
from repro.ltdp.engine.specs import (
    BackwardFixupSpec,
    BackwardInitSpec,
    ForwardFixupSpec,
    ForwardInitSpec,
    ObjectiveSpec,
    SpecResult,
    SuperstepSpec,
)
from repro.ltdp.engine.state import EngineState

__all__ = [
    "ParallelOptions",
    "solve_parallel",
    "edge_weight_by_probe",
    "SuperstepRuntime",
    "LocalRuntime",
    "EngineState",
    "SuperstepSpec",
    "SpecResult",
    "ForwardInitSpec",
    "ForwardFixupSpec",
    "ObjectiveSpec",
    "BackwardInitSpec",
    "BackwardFixupSpec",
]
