"""Compatibility shim: ``EngineState`` now lives in the store layer.

The driver-resident stage store was extracted into
:mod:`repro.ltdp.engine.store` as :class:`DriverStore` when state
ownership was decoupled from spec execution (store / program / runner
split).  ``EngineState`` remains importable from here — and from
:mod:`repro.ltdp.engine` — as an alias for existing callers.
"""

from repro.ltdp.engine.store import DriverStore as EngineState

__all__ = ["EngineState"]
