"""Driver-side stage storage for runtimes that keep state in-process.

:class:`EngineState` is the single-address-space incarnation of the
paper's distributed stores: one slot per stage for the solution vector
and the predecessor vector, plus the backward path array once the
backward phase begins.  The serial / thread / forked-process runtimes
all share one instance — safe because within a superstep every spec
reads only its own range and all writes are buffered in
:class:`~repro.ltdp.engine.specs.SpecResult` objects that the runtime
applies after the barrier.
"""

from __future__ import annotations

import numpy as np

from repro.ltdp.problem import LTDPProblem
from repro.ltdp.engine.specs import SpecResult

__all__ = ["EngineState"]


class EngineState:
    """All-stages store living in the driver process (one per solve)."""

    def __init__(self, problem: LTDPProblem) -> None:
        n = problem.num_stages
        self.s: list[np.ndarray | None] = [None] * (n + 1)
        self.s[0] = problem.initial_vector()
        self.pred: list[np.ndarray | None] = [None] * (n + 1)
        #: The backward path array; installed by the driver when the
        #: backward phase starts (it owns path assembly for all runtimes).
        self.path: np.ndarray | None = None
        #: Resident §4.7 delta state: stage → cached kernel evaluation.
        self.fixup_state: dict[int, object] = {}
        #: Range-lo → input boundary last consumed by a fix-up sweep
        #: there (the base vector boundary diffs apply against).
        self.fixup_input: dict[int, np.ndarray] = {}

    # -- StageStore protocol -------------------------------------------
    def get_s(self, i: int) -> np.ndarray:
        v = self.s[i]
        assert v is not None, f"stage {i} vector not yet computed"
        return v

    def get_pred(self, i: int) -> np.ndarray:
        p = self.pred[i]
        assert p is not None, f"stage {i} predecessors not yet computed"
        return p

    def get_path(self, i: int) -> int:
        assert self.path is not None, "backward phase not started"
        return int(self.path[i])

    def get_fixup_state(self, i: int):
        return self.fixup_state.get(i)

    def get_fixup_input(self, lo: int) -> np.ndarray | None:
        return self.fixup_input.get(lo)

    # -- post-barrier application --------------------------------------
    def apply(self, result: SpecResult) -> None:
        """Install a spec's stage-resident writes.

        Path updates are deliberately *not* applied here: the driver
        owns the path array (shared with this store) and applies them
        itself, uniformly for local and pool runtimes.
        """
        for i, v in result.s_updates.items():
            self.s[i] = v
        for i, p in result.pred_updates.items():
            self.pred[i] = p
        if result.fixup_state_updates:
            self.fixup_state.update(result.fixup_state_updates)
        if result.fixup_input is not None:
            lo, vec = result.fixup_input
            self.fixup_input[lo] = vec
