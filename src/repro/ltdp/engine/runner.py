"""The runner layer: N concurrent pullers draining an instruction program.

numpywren's ``job_runner`` pattern: runners do not know about phases or
barriers — they pull whatever instruction the shared
:class:`~repro.machine.workqueue.WorkQueue` says is ready, execute it
through a runtime-supplied callback, record the result on the
:class:`~repro.ltdp.engine.program.InstructionProgram` (first wins),
and mark it done.  The driver still barriers per superstep (planners
need the previous round's boundaries to plan the next), but *within*
a superstep the instructions race freely across runners — and the
layering is what the redelivery suite exploits to prove the idempotency
contract: :class:`DeliveryPolicy` can deliver every instruction twice
and in LIFO order, and results must stay bit-identical.

Why duplicates are safe, in both deployments:

- driver-resident state: duplicate executions read the same
  pre-barrier store (writes are buffered in ``SpecResult`` and applied
  after ``run_step`` returns), so they compute identical results and
  the program keeps exactly one;
- worker-resident state: the worker's per-instruction result cache
  (see ``_w_run_instr``) returns the stored reply without re-executing,
  so resident state is never double-applied.

Teardown ordering: a crew registers its :meth:`RunnerCrew.close` as an
executor teardown hook, so ``Executor.close()`` abandons the queue and
drains the runner threads *before* the transport (thread pool / worker
pool) disappears underneath them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import ExecutorError
from repro.ltdp.engine.program import Instruction, InstructionProgram
from repro.machine.trace import Tracer
from repro.machine.workqueue import WorkQueue

__all__ = ["DeliveryPolicy", "RunnerCrew"]


@dataclass(frozen=True)
class DeliveryPolicy:
    """How instructions reach runners — the redelivery fault-injection knob.

    ``duplicates`` enqueues every instruction that many times
    (numpywren's ``FailureTests`` insert repeated instructions into the
    program-counter queue; re-delivery must be harmless).  ``order``
    picks the ready-queue discipline: ``"lifo"`` reverses delivery
    wherever the dependency DAG allows reordering, which a correct
    program must not observe.
    """

    duplicates: int = 1
    order: str = "fifo"

    def __post_init__(self) -> None:
        if self.duplicates < 1:
            raise ValueError(f"duplicates must be >= 1, got {self.duplicates}")

    @property
    def is_default(self) -> bool:
        return self.duplicates == 1 and self.order == "fifo"


class RunnerCrew:
    """N runner threads pulling one program's instructions from one queue.

    ``execute(instruction)`` is the runtime's transport callback — it
    runs the instruction wherever that runtime executes specs (inline,
    a thread/process executor, a pool worker) and returns the
    :class:`~repro.ltdp.engine.specs.SpecResult`.
    """

    def __init__(
        self,
        num_runners: int,
        execute: Callable[[Instruction], object],
        program: InstructionProgram,
        tracer: Tracer | None = None,
        policy: DeliveryPolicy | None = None,
    ) -> None:
        if num_runners < 1:
            raise ValueError(f"num_runners must be >= 1, got {num_runners}")
        self.policy = policy or DeliveryPolicy()
        self.program = program
        self.tracer = tracer
        self._execute = execute
        self.queue = WorkQueue(order=self.policy.order)
        self._cond = threading.Condition()
        #: seq → deliveries enqueued but not yet fully processed.
        self._pending: dict[int, int] = {}  # guarded-by: self._cond
        self._errors: dict[int, BaseException] = {}  # guarded-by: self._cond
        self._closed = False  # guarded-by: self._cond
        self._threads = [
            threading.Thread(
                target=self._runner_loop,
                args=(rid,),
                name=f"ltdp-runner-{rid}",
                daemon=True,
            )
            for rid in range(num_runners)
        ]
        for t in self._threads:
            t.start()

    @property
    def num_runners(self) -> int:
        return len(self._threads)

    # -- runner side ----------------------------------------------------
    def _runner_loop(self, rid: int) -> None:
        while True:
            t0 = time.perf_counter()
            pulled = self.queue.pull()
            if pulled is None:  # abandoned: the crew is shutting down
                return
            seq, instr = pulled
            tracer = self.tracer
            if tracer:
                tracer.add_span(
                    "runner.pull",
                    t0,
                    time.perf_counter(),
                    runner=rid,
                    seq=seq,
                    step=instr.step,
                    label=instr.label,
                )
            try:
                if self.program.is_recorded(seq):
                    # Re-delivery of an applied instruction: a no-op.
                    if tracer:
                        tracer.event(
                            "instr-duplicate", runner=rid, seq=seq, label=instr.label
                        )
                else:
                    c0 = time.perf_counter()
                    result = self._execute(instr)
                    first = self.program.record_result(seq, result)
                    if tracer:
                        tracer.add_span(
                            "program.instr",
                            c0,
                            time.perf_counter(),
                            runner=rid,
                            seq=seq,
                            step=instr.step,
                            slot=instr.slot,
                            label=instr.label,
                            duplicate=not first,
                        )
            except BaseException as exc:  # repro: noqa[REP005]: a runner thread must survive any instruction failure and surface it through run_step, not die silently
                with self._cond:
                    self._errors.setdefault(seq, exc)
            finally:
                self.queue.mark_done(seq)
                with self._cond:
                    self._pending[seq] = self._pending.get(seq, 1) - 1
                    self._cond.notify_all()

    # -- driver side ----------------------------------------------------
    def run_step(self, instrs: Sequence[Instruction]) -> list:
        """Enqueue one superstep's instructions; block until all drain.

        Every instruction is delivered ``policy.duplicates`` times; the
        call returns only when *every* delivery has been processed, so
        no straggling duplicate can still be executing when the runtime
        applies results to its store.  Results come back in instruction
        order.  The lowest-seq failure is re-raised with its original
        type (the executor error contract crosses this layer intact).
        """
        seqs = [instr.seq for instr in instrs]
        with self._cond:
            if self._closed:
                raise ExecutorError(
                    "runner crew is closed; its executor was shut down "
                    "mid-program"
                )
            for seq in seqs:
                self._pending[seq] = (
                    self._pending.get(seq, 0) + self.policy.duplicates
                )
        try:
            for instr in instrs:
                for _ in range(self.policy.duplicates):
                    self.queue.put(instr.seq, instr, deps=instr.deps)
        except RuntimeError as exc:  # queue abandoned under us
            raise ExecutorError(
                "runner work queue was abandoned mid-enqueue (executor "
                "closed during a solve)"
            ) from exc
        with self._cond:
            self._cond.wait_for(
                lambda: self._closed
                or all(self._pending.get(seq, 0) == 0 for seq in seqs)
            )
            if any(self._pending.get(seq, 0) != 0 for seq in seqs):
                raise ExecutorError(
                    "runner crew closed before the superstep drained; "
                    f"{sum(self._pending.get(s, 0) for s in seqs)} "
                    "deliveries abandoned"
                )
            failed = sorted(seq for seq in seqs if seq in self._errors)
            if failed:
                raise self._errors[failed[0]]
        return [self.program.result(instr.seq) for instr in instrs]

    def close(self) -> None:
        """Abandon queued deliveries and drain the runner threads.

        Registered as an executor teardown hook: it runs *before* the
        executor's transport is torn down, so runners exit cleanly
        (idle ones wake on abandon; busy ones finish or surface their
        in-flight instruction's failure) instead of blocking forever on
        a dead transport.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self.queue.abandon()
        for t in self._threads:
            t.join(timeout=10.0)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed
