"""The runtime layer: where superstep specs actually execute.

A :class:`SuperstepRuntime` turns the plan layer's declarative
:class:`~repro.ltdp.engine.specs.SuperstepSpec` lists into executed
supersteps.  Two implementations ship:

- :class:`LocalRuntime` — stage state lives in the driver process
  (:class:`~repro.ltdp.engine.state.EngineState`); specs are wrapped in
  closures and handed to any classic
  :class:`~repro.machine.executor.Executor` (serial / thread pool /
  fork-per-task processes).
- :class:`~repro.ltdp.engine.poolrt.PoolRuntime` — stage state lives
  *inside* persistent worker processes
  (:class:`~repro.machine.pool.PoolProcessExecutor`); only specs and
  boundary vectors cross process boundaries.

The driver (:mod:`repro.ltdp.engine.driver`) picks the runtime from the
executor's capabilities, so ``solve_parallel``'s signature and results
are identical either way.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.ltdp.engine.specs import SpecResult, SuperstepSpec
from repro.ltdp.engine.state import EngineState
from repro.ltdp.partition import StageRange
from repro.ltdp.problem import LTDPProblem
from repro.machine.executor import Executor
from repro.machine.trace import Tracer

__all__ = ["SuperstepRuntime", "LocalRuntime"]


class SuperstepRuntime(ABC):
    """Executes superstep specs and owns the per-stage state between them."""

    #: Optional span tracer; ``None`` (the default) costs one check per
    #: superstep.  Set via the runtime constructors from
    #: ``ParallelOptions.tracer``.
    tracer: Tracer | None = None

    @abstractmethod
    def run(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> list[SpecResult]:
        """Execute one superstep (one spec per participating processor).

        ``label`` is the superstep's metrics label (``"forward"``,
        ``"fixup[2]"``, …), used only to tag trace spans.

        Returns results in spec order with all stage-resident updates
        already applied to the runtime's store.  ``path_updates`` are
        applied by the driver (which owns the path array); runtimes with
        worker-resident state must *also* apply them to their workers'
        stores before replying.
        """

    @abstractmethod
    def install_path(self, path: np.ndarray) -> None:
        """Give the runtime's store access to the driver's path array."""

    def prepare_backward(
        self,
        backward_ranges: Sequence[StageRange],
        forward_ranges: Sequence[StageRange],
    ) -> None:
        """Redistribute predecessor vectors when the backward partition
        differs from the forward one (objective problems whose optimum
        lies before the last stage).  No-op for shared-store runtimes."""

    @abstractmethod
    def stage_vectors(self) -> list[np.ndarray | None]:
        """Gather all stored stage vectors (``keep_stage_vectors``)."""

    @abstractmethod
    def pred_vectors(self) -> list[np.ndarray | None]:
        """Gather all predecessor vectors (serial-traceback fallback)."""

    def finish(self) -> None:
        """Release per-solve resources.  Must not tear down the executor."""


class LocalRuntime(SuperstepRuntime):
    """Driver-resident state + any closure-running executor."""

    def __init__(
        self,
        executor: Executor,
        problem: LTDPProblem,
        tracer: Tracer | None = None,
    ) -> None:
        self.executor = executor
        self.problem = problem
        self.state = EngineState(problem)
        self.tracer = tracer
        self._step_no = 0

    def run(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> list[SpecResult]:
        problem, store = self.problem, self.state
        tracer = self.tracer
        if not tracer:
            tasks = [
                lambda spec=spec: spec.execute(problem, store) for spec in specs
            ]
            results = self.executor.run_superstep(tasks)
        else:
            self._step_no += 1
            step_no = self._step_no

            def timed(spec: SuperstepSpec):
                # Per-task compute spans land in the tracer for in-process
                # executors (serial / thread).  Under the fork-per-task
                # executor the closure runs in a child and its span is
                # lost with the fork; the superstep span below — recorded
                # driver-side — still covers the barrier-to-barrier time.
                def task():
                    c0 = time.perf_counter()
                    result = spec.execute(problem, store)
                    tracer.add_span(
                        "compute",
                        c0,
                        time.perf_counter(),
                        superstep=step_no,
                        label=label,
                        proc=spec.proc,
                    )
                    return result

                return task

            t0 = time.perf_counter()
            results = self.executor.run_superstep([timed(s) for s in specs])
            tracer.add_span(
                "superstep",
                t0,
                time.perf_counter(),
                superstep=step_no,
                label=label,
                procs=len(specs),
            )
        for result in results:
            store.apply(result)
        return results

    def install_path(self, path: np.ndarray) -> None:
        self.state.path = path

    def stage_vectors(self) -> list[np.ndarray | None]:
        return list(self.state.s)

    def pred_vectors(self) -> list[np.ndarray | None]:
        return list(self.state.pred)
