"""The runtime layer: where instruction programs actually execute.

A :class:`SuperstepRuntime` turns the plan layer's declarative
:class:`~repro.ltdp.engine.specs.SuperstepSpec` lists into executed
supersteps.  Since the store/program/runner split, a runtime is thin
glue between three owning layers:

- the **store** (:mod:`repro.ltdp.engine.store`) owns stage state —
  driver-resident (:class:`~repro.ltdp.engine.store.DriverStore`) here,
  worker-resident in :class:`~repro.ltdp.engine.poolrt.PoolRuntime`;
- the **program** (:mod:`repro.ltdp.engine.program`) owns superstep
  numbering, instruction seqs/dependencies and the first-wins result
  ledger;
- the **runners** (:mod:`repro.ltdp.engine.runner`) own concurrent
  execution: with ``runners > 1`` (or a non-default
  :class:`~repro.ltdp.engine.runner.DeliveryPolicy`) instructions are
  pulled from a shared work queue by N runner threads instead of the
  classic one-batch-per-barrier executor call.

Two implementations ship:

- :class:`LocalRuntime` — stage state lives in the driver process;
  specs are wrapped in closures and handed to any classic
  :class:`~repro.machine.executor.Executor` (serial / thread pool /
  fork-per-task processes), or executed directly by runner threads when
  a crew is active.
- :class:`~repro.ltdp.engine.poolrt.PoolRuntime` — stage state lives
  *inside* persistent worker processes
  (:class:`~repro.machine.pool.PoolProcessExecutor`); only instructions
  and boundary vectors cross process boundaries.

The driver (:mod:`repro.ltdp.engine.driver`) picks the runtime from the
executor's capabilities, so ``solve_parallel``'s signature and results
are identical either way.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.ltdp.engine.program import InstructionProgram
from repro.ltdp.engine.runner import DeliveryPolicy, RunnerCrew
from repro.ltdp.engine.specs import SpecResult, SuperstepSpec
from repro.ltdp.engine.store import DriverStore
from repro.ltdp.partition import StageRange
from repro.ltdp.problem import LTDPProblem
from repro.machine.executor import Executor
from repro.machine.trace import Tracer

__all__ = ["SuperstepRuntime", "LocalRuntime"]


def _wants_crew(runners: int, delivery: DeliveryPolicy | None) -> bool:
    """A crew is spun up for real concurrency *or* redelivery testing."""
    if runners < 1:
        raise ValueError(f"runners must be >= 1, got {runners}")
    return runners > 1 or (delivery is not None and not delivery.is_default)


class SuperstepRuntime(ABC):
    """Executes superstep specs and owns the per-stage state between them."""

    #: Optional span tracer; ``None`` (the default) costs one check per
    #: superstep.  Set via the runtime constructors from
    #: ``ParallelOptions.tracer``.
    tracer: Tracer | None = None

    @property
    def step_no(self) -> int:
        """Solve-global superstep counter (0 before the first superstep).

        Owned by the instruction program and incremented on *every*
        superstep, traced or not, so trace spans, metrics records and
        instruction seqs always agree on numbering.
        """
        return 0

    @abstractmethod
    def run(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> list[SpecResult]:
        """Execute one superstep (one spec per participating processor).

        ``label`` is the superstep's metrics label (``"forward"``,
        ``"fixup[2]"``, …), used to tag trace spans and the compiled
        instructions.

        Returns results in spec order with all stage-resident updates
        already applied to the runtime's store.  ``path_updates`` are
        applied by the driver (which owns the path array); runtimes with
        worker-resident state must *also* apply them to their workers'
        stores before replying.
        """

    @abstractmethod
    def install_path(self, path: np.ndarray) -> None:
        """Give the runtime's store access to the driver's path array."""

    def prepare_backward(
        self,
        backward_ranges: Sequence[StageRange],
        forward_ranges: Sequence[StageRange],
    ) -> None:
        """Redistribute predecessor vectors when the backward partition
        differs from the forward one (objective problems whose optimum
        lies before the last stage).  No-op for shared-store runtimes."""

    @abstractmethod
    def stage_vectors(self) -> list[np.ndarray | None]:
        """Gather all stored stage vectors (``keep_stage_vectors``)."""

    @abstractmethod
    def pred_vectors(self) -> list[np.ndarray | None]:
        """Gather all predecessor vectors (serial-traceback fallback)."""

    def finish(self) -> None:
        """Release per-solve resources.  Must not tear down the executor."""


class LocalRuntime(SuperstepRuntime):
    """Driver-resident state + any closure-running executor.

    With ``runners > 1`` (or a redelivery-testing
    :class:`~repro.ltdp.engine.runner.DeliveryPolicy`), supersteps run
    through a :class:`~repro.ltdp.engine.runner.RunnerCrew`: instructions
    are pulled from the shared work queue and executed *in the runner
    threads* against the shared :class:`DriverStore` — safe because
    specs only read their own range and buffer all writes, which the
    driver applies after the barrier in spec order.
    """

    def __init__(
        self,
        executor: Executor,
        problem: LTDPProblem,
        tracer: Tracer | None = None,
        runners: int = 1,
        delivery: DeliveryPolicy | None = None,
    ) -> None:
        self.executor = executor
        self.problem = problem
        self.state = DriverStore(problem)
        self.tracer = tracer
        self.program = InstructionProgram()
        self._crew: RunnerCrew | None = None
        if _wants_crew(runners, delivery):
            self._crew = RunnerCrew(
                runners,
                self._execute_instr,
                self.program,
                tracer=tracer,
                policy=delivery,
            )
            # Teardown ordering (PR 2 weakref.finalize path): the crew
            # must drain/abandon before the executor tears down.
            if hasattr(executor, "add_teardown_hook"):
                executor.add_teardown_hook(self._crew.close)

    @property
    def step_no(self) -> int:
        return self.program.step_no

    def _execute_instr(self, instr) -> SpecResult:
        """Runner-crew transport: execute one instruction inline.

        Duplicate deliveries are harmless here: the spec reads only
        pre-barrier store contents (writes are buffered in the result),
        so a re-execution computes a bit-identical result and the
        program's first-wins ledger keeps exactly one.
        """
        return instr.spec.execute(self.problem, self.state)

    def run(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> list[SpecResult]:
        problem, store = self.problem, self.state
        tracer = self.tracer
        step_no, instrs = self.program.add_superstep(specs, label)
        if self._crew is not None:
            if not tracer:
                results = self._crew.run_step(instrs)
            else:
                t0 = time.perf_counter()
                results = self._crew.run_step(instrs)
                tracer.add_span(
                    "superstep",
                    t0,
                    time.perf_counter(),
                    superstep=step_no,
                    label=label,
                    procs=len(specs),
                )
        elif not tracer:
            tasks = [
                lambda spec=spec: spec.execute(problem, store) for spec in specs
            ]
            results = self.executor.run_superstep(tasks)
            for instr, result in zip(instrs, results):
                self.program.record_result(instr.seq, result)
        else:

            def timed(spec: SuperstepSpec):
                # Per-task compute spans land in the tracer for in-process
                # executors (serial / thread).  Under the fork-per-task
                # executor the closure runs in a child and its span is
                # lost with the fork; the superstep span below — recorded
                # driver-side — still covers the barrier-to-barrier time.
                def task():
                    c0 = time.perf_counter()
                    result = spec.execute(problem, store)
                    tracer.add_span(
                        "compute",
                        c0,
                        time.perf_counter(),
                        superstep=step_no,
                        label=label,
                        proc=spec.proc,
                    )
                    return result

                return task

            t0 = time.perf_counter()
            results = self.executor.run_superstep([timed(s) for s in specs])
            tracer.add_span(
                "superstep",
                t0,
                time.perf_counter(),
                superstep=step_no,
                label=label,
                procs=len(specs),
            )
            for instr, result in zip(instrs, results):
                self.program.record_result(instr.seq, result)
        # Post-barrier application, in spec order regardless of which
        # runner finished first — the store's seq guard additionally
        # makes a re-applied result a no-op.
        for instr, result in zip(instrs, results):
            store.apply(result, seq=instr.seq)
        return results

    def install_path(self, path: np.ndarray) -> None:
        self.state.path = path

    def stage_vectors(self) -> list[np.ndarray | None]:
        return list(self.state.s)

    def pred_vectors(self) -> list[np.ndarray | None]:
        return list(self.state.pred)

    def finish(self) -> None:
        if self._crew is not None:
            self._crew.close()
            if hasattr(self.executor, "remove_teardown_hook"):
                self.executor.remove_teardown_hook(self._crew.close)
            self._crew = None
