"""The program layer: superstep specs compiled into instruction programs.

A phase planner emits one :class:`~repro.ltdp.engine.specs.SuperstepSpec`
per processor per barrier; this module compiles those lists into a
sequence-numbered :class:`InstructionProgram` — the lambdapack pattern
(numpywren): a flat, append-only list of :class:`Instruction` objects,
each naming the dataflow slots it reads and writes, pulled by runners
and **idempotent under repeat delivery**.

The program is simultaneously three things:

- the **schedule**: each instruction carries the dependency edges
  (``deps``) a work queue needs to release it only when its inputs
  exist — the fix-up DAG made explicit;
- the **counter**: ``add_superstep`` increments the solve-global
  superstep number unconditionally, so trace spans, metrics
  ``SuperstepRecord.step`` values and instruction seqs all correlate
  (the old ``LocalRuntime._step_no`` only counted when tracing was on);
- the **journal**: ``slot_history`` lists every instruction ever
  compiled for a slot, and ``is_recorded`` marks the ones whose results
  completed a barrier — exactly the prefix crash recovery must replay.
  PR 2's replay journal is subsumed: rebuilding a dead worker is
  "re-run the recorded program suffix for its slots".

Dataflow slot naming: ``state:p`` / ``pred:p`` / ``bnd:p`` / ``obj:p``
/ ``path:p`` are processor ``p``'s resident stage vectors, predecessor
vectors, range-final boundary, objective candidate and path segment.
A fix-up instruction for processor ``p`` reads ``bnd:p-1`` (its left
neighbour's boundary as of the previous barrier) — the paper's one
message per neighbour pair per iteration, now a visible edge.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.ltdp.engine.specs import (
    BackwardFixupSpec,
    BackwardInitSpec,
    ForwardFixupSpec,
    ForwardInitSpec,
    ObjectiveSpec,
    SpecResult,
    SuperstepSpec,
)

__all__ = ["Instruction", "InstructionProgram"]


def _dataflow(spec: SuperstepSpec) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(reads, writes)`` dataflow slots of one spec's instruction."""
    p = spec.proc
    if isinstance(spec, ForwardInitSpec):
        return (), (f"state:{p}", f"pred:{p}", f"bnd:{p}")
    if isinstance(spec, ForwardFixupSpec):
        return (f"bnd:{p - 1}", f"state:{p}"), (
            f"state:{p}",
            f"pred:{p}",
            f"bnd:{p}",
        )
    if isinstance(spec, ObjectiveSpec):
        return (f"state:{p}",), (f"obj:{p}",)
    if isinstance(spec, BackwardInitSpec):
        return (f"pred:{p}",), (f"path:{p}",)
    if isinstance(spec, BackwardFixupSpec):
        return (f"pred:{p}", f"path:{p + 1}"), (f"path:{p}",)
    return (), ()  # unknown spec kinds order only by superstep barrier


@dataclass(frozen=True)
class Instruction:
    """One pullable unit of work: a spec (or install) plus its edges.

    ``seq`` is the program-global sequence number (1-based, dense);
    ``step`` the superstep this instruction belongs to.  ``op`` is
    ``"spec"`` (execute ``spec`` against the slot's store) or
    ``"pred-install"`` (merge ``payload`` — redistributed predecessor
    vectors — into the slot's store).  ``deps`` are the seqs whose
    results this instruction's reads require; a work queue must not
    deliver it before they are done.
    """

    seq: int
    step: int
    slot: int
    label: str
    op: str = "spec"
    spec: SuperstepSpec | None = None
    payload: Any = None
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    deps: tuple[int, ...] = ()


@dataclass
class _Recorded:
    result: SpecResult | None = None


class InstructionProgram:
    """Append-only compiled program + first-wins result ledger.

    Thread-safe: runners record results concurrently while the driver
    compiles the next superstep.  ``record_result`` is **first-wins** —
    the driver-side half of the idempotency contract: when a duplicate
    delivery races the original, exactly one result is kept, and it is
    bit-identical to the other by spec determinism.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instructions: list[Instruction] = []  # guarded-by: self._lock
        self._by_slot: dict[int, list[Instruction]] = {}  # guarded-by: self._lock
        self._recorded: dict[int, _Recorded] = {}  # guarded-by: self._lock
        self._last_write: dict[str, int] = {}  # guarded-by: self._lock
        self._step = 0  # guarded-by: self._lock

    # -- compiling ------------------------------------------------------
    def add_superstep(
        self, specs: Sequence[SuperstepSpec], label: str = ""
    ) -> tuple[int, list[Instruction]]:
        """Compile one superstep's specs; returns ``(step, instructions)``.

        The step counter increments on every call — traced or not — so
        superstep numbering can never skew between trace spans, metrics
        records and instruction seqs.

        Dependency edges follow barrier semantics: every read (and
        write-after-write) resolves against the last writer *as of the
        previous barrier* — a fix-up instruction's boundary input is
        snapshotted into its spec, so its neighbour's same-superstep
        write must not become an edge (it would falsely chain the
        fix-up wave and serialize the runners).
        """
        with self._lock:
            self._step += 1
            step = self._step
            instrs: list[Instruction] = []
            pre_step_writes = dict(self._last_write)
            for spec in specs:
                seq = len(self._instructions) + 1
                reads, writes = _dataflow(spec)
                deps = sorted(
                    {
                        pre_step_writes[s]
                        for s in (*reads, *writes)
                        if s in pre_step_writes
                    }
                )
                instr = Instruction(
                    seq=seq,
                    step=step,
                    slot=spec.proc,
                    label=label,
                    op="spec",
                    spec=spec,
                    reads=reads,
                    writes=writes,
                    deps=tuple(deps),
                )
                self._instructions.append(instr)
                self._by_slot.setdefault(spec.proc, []).append(instr)
                for s in writes:
                    self._last_write[s] = seq
                instrs.append(instr)
            return step, instrs

    def add_install(self, slot: int, payload: Any, label: str = "pred-install") -> Instruction:
        """Journal a driver-mediated predecessor install for ``slot``.

        Installs are synchronous (the driver barriers on them before
        compiling any instruction that could read them), so they carry
        no dataflow edges and do not register as last writers — they
        exist so crash recovery replays them in slot order.
        """
        with self._lock:
            seq = len(self._instructions) + 1
            instr = Instruction(
                seq=seq,
                step=self._step,
                slot=slot,
                label=label,
                op="pred-install",
                payload=payload,
                writes=(f"pred:{slot}",),
            )
            self._instructions.append(instr)
            self._by_slot.setdefault(slot, []).append(instr)
            return instr

    # -- the result ledger ---------------------------------------------
    def record_result(self, seq: int, result: SpecResult | None = None) -> bool:
        """Record ``seq``'s result; first delivery wins.

        Returns True when this call recorded (first delivery), False
        when the seq was already recorded (duplicate — a no-op).
        """
        with self._lock:
            if seq in self._recorded:
                return False
            self._recorded[seq] = _Recorded(result)
            return True

    def is_recorded(self, seq: int) -> bool:
        with self._lock:
            return seq in self._recorded

    def result(self, seq: int) -> SpecResult | None:
        with self._lock:
            rec = self._recorded.get(seq)
            return rec.result if rec is not None else None

    # -- introspection --------------------------------------------------
    @property
    def step_no(self) -> int:
        """Supersteps compiled so far (the solve-global counter)."""
        with self._lock:
            return self._step

    def __len__(self) -> int:
        with self._lock:
            return len(self._instructions)

    def instructions(self) -> list[Instruction]:
        with self._lock:
            return list(self._instructions)

    def slot_history(self, slot: int) -> list[Instruction]:
        """Every instruction compiled for ``slot``, in program order.

        Filtered by :meth:`is_recorded`, this is the replay program for
        a respawned worker owning ``slot``: re-running the recorded
        prefix rebuilds the slot's resident state bit-identically
        (spec determinism), while in-flight instructions — compiled but
        not recorded — are excluded, matching PR 2's
        journal-after-barrier discipline.
        """
        with self._lock:
            return list(self._by_slot.get(slot, ()))
