"""Forward-phase planner (paper Fig 4): initial pass + fix-up loop.

This module *plans* — it builds :class:`ForwardInitSpec` /
:class:`ForwardFixupSpec` lists, snapshots the boundary vectors that
cross each barrier, hands the specs to the runtime, and keeps the
metrics ledger.  All numeric work happens inside the specs, wherever
the runtime runs them.

The driver-visible product of the phase is the ``finals`` map: each
processor's range-final stage vector as of the last barrier.  It is the
complete inter-processor state of the forward phase (the only vectors
the paper's algorithm ever communicates), which is what lets the pool
runtime keep everything else worker-resident.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.exceptions import ConvergenceError
from repro.kernels import kernel_tier_enabled
from repro.ltdp.delta import changed_delta_count, encode_boundary_diff
from repro.ltdp.engine.runtime import SuperstepRuntime
from repro.ltdp.engine.specs import (
    DeltaRepairSpec,
    ForwardFixupSpec,
    ForwardInitSpec,
)
from repro.ltdp.partition import StageRange
from repro.ltdp.problem import LTDPProblem
from repro.machine.metrics import CommEvent, RunMetrics, SuperstepRecord

__all__ = [
    "plan_initial_pass",
    "plan_fixup_round",
    "forward_phase",
    "repair_forward_phase",
]


def plan_initial_pass(
    ranges: Sequence[StageRange],
    opts,
    *,
    capture_state: bool = False,
    use_kernels: bool = False,
) -> list[ForwardInitSpec]:
    """Fig 4 lines 6-11: every processor sweeps its range from s0 / nz."""
    seed_seq = np.random.SeedSequence(opts.seed)
    child_seeds = seed_seq.spawn(len(ranges))
    return [
        ForwardInitSpec(
            proc=rg.proc,
            lo=rg.lo,
            hi=rg.hi,
            seed=child,
            nz_low=opts.nz_low,
            nz_high=opts.nz_high,
            nz_integer=opts.nz_integer,
            capture_state=capture_state,
            use_kernels=use_kernels,
        )
        for rg, child in zip(ranges, child_seeds)
    ]


def plan_fixup_round(
    ranges: Sequence[StageRange],
    finals: dict[int, np.ndarray],
    opts,
    tol: float,
    *,
    sparse: bool = False,
    last_input: dict[int, np.ndarray] | None = None,
    last_converged: dict[int, bool] | None = None,
    use_kernels: bool = False,
) -> tuple[list[ForwardFixupSpec], list[CommEvent], int]:
    """One fix-up superstep: snapshot boundaries, emit specs + comm events.

    Barrier semantics: every processor reads its left neighbour's final
    stage vector *as stored at the start of the iteration* — the copy
    here is that snapshot.

    Convergence-aware scheduling (Fig 4's early exit): a processor that
    converged last round *and* whose input boundary is bit-identical to
    the one it already consumed is dropped from the superstep entirely —
    no spec, no message.  Its re-run would deterministically reproduce
    its stored state and converge again, so skipping it cannot change
    any result.

    In delta mode, a re-dispatched processor is shipped a
    :class:`~repro.ltdp.delta.BoundaryDiff` against its resident input
    copy whenever the diff is smaller than the dense vector.

    Returns ``(specs, comm, changed_deltas)`` where ``changed_deltas``
    is the round's total §4.7 changed-delta count over the dispatched
    boundaries (dense first dispatches count their full width).
    ``last_input`` is updated in place with the dispatched snapshots.
    """
    last_input = {} if last_input is None else last_input
    last_converged = {} if last_converged is None else last_converged
    specs: list[ForwardFixupSpec] = []
    comm: list[CommEvent] = []
    changed_total = 0
    crossover = getattr(opts, "delta_crossover", 0.25)
    for rg in ranges[1:]:
        new_in = np.array(finals[rg.proc - 1], copy=True)
        prev = last_input.get(rg.proc)
        diffable = prev is not None and prev.shape == new_in.shape
        if (
            last_converged.get(rg.proc, False)
            and diffable
            and np.array_equal(prev, new_in)
        ):
            continue  # converged, nothing new arrived: stays correct
        boundary: np.ndarray | None = new_in
        diff = None
        num_bytes = 8 * new_in.size
        if opts.use_delta and diffable:
            changed_total += changed_delta_count(prev, new_in)
            cand = encode_boundary_diff(prev, new_in)
            if cand.num_bytes < num_bytes:
                diff, boundary, num_bytes = cand, None, cand.num_bytes
        elif opts.use_delta:
            changed_total += int(new_in.size)  # first dispatch ships dense
        specs.append(
            ForwardFixupSpec(
                proc=rg.proc,
                lo=rg.lo,
                hi=rg.hi,
                boundary=boundary,
                boundary_diff=diff,
                tol=tol,
                use_delta=opts.use_delta,
                sparse=sparse,
                crossover=crossover,
                use_kernels=use_kernels,
            )
        )
        comm.append(CommEvent(src=rg.proc - 1, dst=rg.proc, num_bytes=num_bytes))
        last_input[rg.proc] = new_in
    return specs, comm, changed_total


def _fixup_loop(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
    finals: dict[int, np.ndarray],
    *,
    sparse: bool,
    last_input: dict[int, np.ndarray],
    last_converged: dict[int, bool],
    use_kernels: bool = False,
) -> int:
    """Fig 4 lines 13-27: fix-up supersteps until every processor converges.

    Mutates ``finals`` / ``last_input`` / ``last_converged`` in place
    (callers that keep solves resident — the serve layer — carry these
    dicts across requests) and returns the number of fix-up iterations
    dispatched.
    """
    num_procs = len(ranges)
    if num_procs == 1:
        return 0
    max_iters = (
        opts.max_fixup_iterations
        if opts.max_fixup_iterations is not None
        else num_procs + 1
    )
    tol = problem.parallel_tol
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iters:
            raise ConvergenceError(
                f"forward fix-up did not converge within {max_iters} iterations"
            )
        specs, comm, changed = plan_fixup_round(
            ranges,
            finals,
            opts,
            tol,
            sparse=sparse,
            last_input=last_input,
            last_converged=last_converged,
            use_kernels=use_kernels,
        )
        if not specs:
            # Every processor is converged on an unchanged input.  The
            # initial-pass loop normally exits via all_conv below before
            # planning an empty round; a repair whose perturbation died
            # inside the repaired ranges lands here on its first round.
            iteration -= 1
            break
        label = f"fixup[{iteration}]"
        t0 = time.perf_counter()
        results = runtime.run(specs, label=label)
        wall = time.perf_counter() - t0
        work_row = [0.0] * num_procs  # non-dispatched processors idle
        all_conv = True
        for result in results:
            finals[result.proc] = result.boundary
            work_row[result.proc - 1] = result.work
            metrics.fixup_stages[result.proc] = (
                metrics.fixup_stages.get(result.proc, 0) + result.stages_done
            )
            last_converged[result.proc] = result.converged
            all_conv &= result.converged
        metrics.fixup_dispatched.append(len(specs))
        if opts.use_delta:
            metrics.fixup_changed_deltas.append(changed)
        metrics.record(
            SuperstepRecord(
                label=label,
                work=work_row,
                comm=comm,
                wall_seconds=wall,
                phase="forward",
                step=runtime.step_no,
            )
        )
        if all_conv:
            break
    return iteration


def forward_phase(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
    *,
    last_input: dict[int, np.ndarray] | None = None,
    last_converged: dict[int, bool] | None = None,
) -> dict[int, np.ndarray]:
    """Run the full forward phase; returns each processor's final vector.

    ``last_input`` / ``last_converged`` are the convergence-aware
    scheduling state (the input boundary each processor consumed at its
    last dispatch, and whether it converged there).  Callers that keep
    the solve resident pass their own dicts so a later
    :func:`repair_forward_phase` can continue from them; by default the
    state is loop-local, exactly as before.
    """
    num_procs = len(ranges)
    # Sparse fix-up kernels run only where they are bit-exact: the
    # problem must advertise support (integral scores).
    sparse = opts.use_delta and getattr(problem, "supports_sparse_fixup", False)
    # Raw-speed kernel tier: selected per problem through the same
    # capability mechanism as resident state (see repro.kernels).
    use_kernels = kernel_tier_enabled(opts, problem)

    # -- initial pass (one superstep) ----------------------------------
    specs = plan_initial_pass(
        ranges, opts, capture_state=sparse, use_kernels=use_kernels
    )
    t0 = time.perf_counter()
    results = runtime.run(specs, label="forward")
    wall = time.perf_counter() - t0
    finals: dict[int, np.ndarray] = {}
    work_row = []
    for result, rg in zip(results, ranges):
        finals[rg.proc] = result.boundary
        work_row.append(result.work)
    metrics.record(
        SuperstepRecord(
            label="forward",
            work=work_row,
            wall_seconds=wall,
            phase="forward",
            step=runtime.step_no,
        )
    )

    # -- fix-up loop (Fig 4 lines 13-27) -------------------------------
    if num_procs == 1:
        return finals
    iteration = _fixup_loop(
        problem,
        ranges,
        opts,
        runtime,
        metrics,
        finals,
        sparse=sparse,
        last_input={} if last_input is None else last_input,
        last_converged={} if last_converged is None else last_converged,
        use_kernels=use_kernels,
    )
    metrics.forward_fixup_iterations = iteration
    metrics.converged_first_iteration = iteration == 1
    return finals


def repair_forward_phase(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
    *,
    finals: dict[int, np.ndarray],
    last_input: dict[int, np.ndarray],
    last_converged: dict[int, bool],
    dirty_stages: set[int],
) -> dict[int, np.ndarray]:
    """Repair a resident forward solve against a mutated problem.

    The serve layer's cache-hit path: instead of re-running the initial
    pass, each processor whose range contains a dirty stage (a stage
    whose transform differs from the resident canonical solve) sweeps
    once with a :class:`DeltaRepairSpec` — dense recompute at the dirty
    stages, sparse §4.7 repair elsewhere — and the ordinary fix-up loop
    then propagates whatever survived past the range boundaries.  The
    runtime's worker-side problem must already be rebound to ``problem``
    (see ``PoolRuntime.rebind_problem``).

    Requires the resident state produced by a previous
    :func:`forward_phase` / ``repair_forward_phase`` on the same ranges:
    ``finals``, plus the scheduling dicts those calls maintained.  All
    three are mutated in place.  Returns the repaired ``finals``.
    """
    num_procs = len(ranges)
    sparse = opts.use_delta and getattr(problem, "supports_sparse_fixup", False)
    use_kernels = kernel_tier_enabled(opts, problem)
    tol = problem.parallel_tol
    crossover = getattr(opts, "delta_crossover", 0.25)
    dirty_by_proc: dict[int, list[int]] = {}
    for rg in ranges:
        mine = sorted(i for i in dirty_stages if rg.lo < i <= rg.hi)
        if mine:
            dirty_by_proc[rg.proc] = mine
    if dirty_by_proc:
        specs: list[DeltaRepairSpec] = []
        comm: list[CommEvent] = []
        for rg in ranges:
            mine = dirty_by_proc.get(rg.proc)
            if mine is None:
                continue
            # Repair input: processor 1 restarts from the exact initial
            # vector; everyone else from their left neighbour's resident
            # final (unchanged so far — the repair wave moves rightward).
            if rg.proc == 1:
                new_in = np.asarray(problem.initial_vector(), dtype=np.float64)
            else:
                new_in = np.array(finals[rg.proc - 1], copy=True)
            prev = last_input.get(rg.proc)
            diffable = prev is not None and prev.shape == new_in.shape
            boundary: np.ndarray | None = new_in
            diff = None
            num_bytes = 8 * new_in.size
            if opts.use_delta and diffable:
                cand = encode_boundary_diff(prev, new_in)
                if cand.num_bytes < num_bytes:
                    diff, boundary, num_bytes = cand, None, cand.num_bytes
            specs.append(
                DeltaRepairSpec(
                    proc=rg.proc,
                    lo=rg.lo,
                    hi=rg.hi,
                    boundary=boundary,
                    boundary_diff=diff,
                    tol=tol,
                    use_delta=opts.use_delta,
                    sparse=sparse,
                    crossover=crossover,
                    dirty=tuple(mine),
                )
            )
            comm.append(
                CommEvent(src=rg.proc - 1, dst=rg.proc, num_bytes=num_bytes)
            )
            last_input[rg.proc] = new_in
        t0 = time.perf_counter()
        results = runtime.run(specs, label="repair")
        wall = time.perf_counter() - t0
        work_row = [0.0] * num_procs
        repaired = 0
        for result in results:
            finals[result.proc] = result.boundary
            work_row[result.proc - 1] = result.work
            metrics.fixup_stages[result.proc] = (
                metrics.fixup_stages.get(result.proc, 0) + result.stages_done
            )
            last_converged[result.proc] = result.converged
            repaired += result.repaired_deltas
        metrics.fixup_dispatched.append(len(specs))
        if opts.use_delta:
            # For the repair round this counts the delta-space cells the
            # sweeps actually changed against the resident state — the
            # serve layer's "the hit really took the repair path" signal.
            metrics.fixup_changed_deltas.append(repaired)
        metrics.record(
            SuperstepRecord(
                label="repair",
                work=work_row,
                comm=comm,
                wall_seconds=wall,
                phase="forward",
                step=runtime.step_no,
            )
        )
    iteration = _fixup_loop(
        problem,
        ranges,
        opts,
        runtime,
        metrics,
        finals,
        sparse=sparse,
        last_input=last_input,
        last_converged=last_converged,
        use_kernels=use_kernels,
    )
    metrics.forward_fixup_iterations = iteration
    metrics.converged_first_iteration = iteration <= 1
    return finals
