"""Forward-phase planner (paper Fig 4): initial pass + fix-up loop.

This module *plans* — it builds :class:`ForwardInitSpec` /
:class:`ForwardFixupSpec` lists, snapshots the boundary vectors that
cross each barrier, hands the specs to the runtime, and keeps the
metrics ledger.  All numeric work happens inside the specs, wherever
the runtime runs them.

The driver-visible product of the phase is the ``finals`` map: each
processor's range-final stage vector as of the last barrier.  It is the
complete inter-processor state of the forward phase (the only vectors
the paper's algorithm ever communicates), which is what lets the pool
runtime keep everything else worker-resident.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.exceptions import ConvergenceError
from repro.ltdp.engine.runtime import SuperstepRuntime
from repro.ltdp.engine.specs import ForwardFixupSpec, ForwardInitSpec
from repro.ltdp.partition import StageRange
from repro.ltdp.problem import LTDPProblem
from repro.machine.metrics import CommEvent, RunMetrics, SuperstepRecord

__all__ = ["plan_initial_pass", "plan_fixup_round", "forward_phase"]


def plan_initial_pass(
    ranges: Sequence[StageRange], opts
) -> list[ForwardInitSpec]:
    """Fig 4 lines 6-11: every processor sweeps its range from s0 / nz."""
    seed_seq = np.random.SeedSequence(opts.seed)
    child_seeds = seed_seq.spawn(len(ranges))
    return [
        ForwardInitSpec(
            proc=rg.proc,
            lo=rg.lo,
            hi=rg.hi,
            seed=child,
            nz_low=opts.nz_low,
            nz_high=opts.nz_high,
            nz_integer=opts.nz_integer,
        )
        for rg, child in zip(ranges, child_seeds)
    ]


def plan_fixup_round(
    ranges: Sequence[StageRange],
    finals: dict[int, np.ndarray],
    opts,
    tol: float,
) -> tuple[list[ForwardFixupSpec], list[CommEvent]]:
    """One fix-up superstep: snapshot boundaries, emit specs + comm events.

    Barrier semantics: every processor reads its left neighbour's final
    stage vector *as stored at the start of the iteration* — the copy
    here is that snapshot.
    """
    specs = [
        ForwardFixupSpec(
            proc=rg.proc,
            lo=rg.lo,
            hi=rg.hi,
            boundary=np.array(finals[rg.proc - 1], copy=True),
            tol=tol,
            use_delta=opts.use_delta,
        )
        for rg in ranges[1:]
    ]
    comm = [
        CommEvent(src=sp.proc - 1, dst=sp.proc, num_bytes=8 * sp.boundary.size)
        for sp in specs
    ]
    return specs, comm


def forward_phase(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts,
    runtime: SuperstepRuntime,
    metrics: RunMetrics,
) -> dict[int, np.ndarray]:
    """Run the full forward phase; returns each processor's final vector."""
    num_procs = len(ranges)

    # -- initial pass (one superstep) ----------------------------------
    specs = plan_initial_pass(ranges, opts)
    t0 = time.perf_counter()
    results = runtime.run(specs, label="forward")
    wall = time.perf_counter() - t0
    finals: dict[int, np.ndarray] = {}
    work_row = []
    for result, rg in zip(results, ranges):
        finals[rg.proc] = result.boundary
        work_row.append(result.work)
    metrics.record(
        SuperstepRecord(
            label="forward", work=work_row, wall_seconds=wall, phase="forward"
        )
    )

    # -- fix-up loop (Fig 4 lines 13-27) -------------------------------
    if num_procs == 1:
        return finals
    max_iters = (
        opts.max_fixup_iterations
        if opts.max_fixup_iterations is not None
        else num_procs + 1
    )
    tol = problem.parallel_tol
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iters:
            raise ConvergenceError(
                f"forward fix-up did not converge within {max_iters} iterations"
            )
        specs, comm = plan_fixup_round(ranges, finals, opts, tol)
        label = f"fixup[{iteration}]"
        t0 = time.perf_counter()
        results = runtime.run(specs, label=label)
        wall = time.perf_counter() - t0
        work_row = [0.0] * num_procs  # processor 1 idles in fix-up
        all_conv = True
        for result in results:
            finals[result.proc] = result.boundary
            work_row[result.proc - 1] = result.work
            metrics.fixup_stages[result.proc] = (
                metrics.fixup_stages.get(result.proc, 0) + result.stages_done
            )
            all_conv &= result.converged
        metrics.record(
            SuperstepRecord(
                label=label,
                work=work_row,
                comm=comm,
                wall_seconds=wall,
                phase="forward",
            )
        )
        if all_conv:
            break
    metrics.forward_fixup_iterations = iteration
    metrics.converged_first_iteration = iteration == 1
    return finals
