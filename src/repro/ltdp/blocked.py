"""The §4.1 strawman: parallelization via explicit matrix products.

"Standard techniques [11, 16] can parallelize this computation using
the associativity of matrix multiplication … However, doing so converts
a sequential computation that performs matrix-vector multiplications to
a parallel computation that performs matrix-matrix multiplications.
This results in a parallelization overhead linear in the size of the
stages."

This module implements that baseline faithfully so the ablation
benchmark can quantify the overhead the rank-convergence algorithm
avoids:

1. every processor multiplies out the partial product ``M_p`` of its
   stage range (matrix-matrix work: Σ width³ per processor);
2. boundary vectors are obtained by a sequential scan of ``P``
   matrix-vector products with the ``M_p``;
3. every processor then re-sweeps its range with ordinary stage
   applications to recover per-stage predecessors.

The result is *identical* to the sequential algorithm (it performs the
same algebra, no convergence assumptions at all) — only the cost is
hopeless for realistic widths, which is exactly the paper's point.
"""

from __future__ import annotations

import numpy as np

from repro.ltdp.partition import partition_stages
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.ltdp.sequential import backward_sequential, best_stage_objective
from repro.machine.executor import Executor, SerialExecutor
from repro.machine.metrics import CommEvent, RunMetrics, SuperstepRecord
from repro.semiring.tropical import tropical_matmat, tropical_matvec

__all__ = ["solve_blocked"]


def _tree_prefix_boundaries(
    initial: np.ndarray, products: list[np.ndarray], P: int
) -> tuple[list[np.ndarray], list[SuperstepRecord]]:
    """Ladner–Fischer inclusive prefix of the product chain.

    Computes ``prefix[p] = M_p ⨂ … ⨂ M_1`` for all ``p`` in ⌈log₂ P⌉
    combining rounds, each round doing independent matrix-matrix
    products (chargeable in parallel), then applies every prefix to
    the initial vector.  Returns the P+1 boundary vectors and the
    superstep records of the rounds.
    """
    prefix: list[np.ndarray | None] = list(products)
    records: list[SuperstepRecord] = []
    offset = 1
    round_idx = 0
    while offset < P:
        work_row = [0.0] * P
        updates: list[tuple[int, np.ndarray]] = []
        for p in range(offset, P):
            left = prefix[p - offset]
            right = prefix[p]
            work_row[p] = float(
                right.shape[0] * right.shape[1] * left.shape[1]
            )
            updates.append((p, tropical_matmat(right, left)))
        for p, value in updates:
            prefix[p] = value
        records.append(
            SuperstepRecord(
                label=f"tree-scan[{round_idx}]",
                work=work_row,
                phase="forward",
                comm=[
                    CommEvent(
                        src=p - offset + 1, dst=p + 1, num_bytes=8 * prefix[p].size
                    )
                    for p in range(offset, P)
                ],
            )
        )
        offset <<= 1
        round_idx += 1
    boundaries = [initial]
    apply_row = [0.0] * P
    for p, M in enumerate(prefix):
        apply_row[p] = float(M.shape[0] * M.shape[1])
        boundaries.append(tropical_matvec(M, initial))
    records.append(SuperstepRecord(label="tree-scan-apply", work=apply_row, phase="forward"))
    return boundaries, records


def solve_blocked(
    problem: LTDPProblem,
    *,
    num_procs: int,
    executor: Executor | None = None,
    tree_scan: bool = False,
) -> LTDPSolution:
    """Solve via explicit partial products (the §4.1 baseline).

    Metrics account matrix-matrix work as ``rows × cols × inner`` cells
    per product, so pricing a run exposes the Θ(width) overhead over
    the rank-convergence algorithm.

    With ``tree_scan`` the boundary vectors come from a Ladner–Fischer
    parallel prefix over the per-processor products (the paper's
    references [11, 16]): O(log P) combining rounds instead of the
    linear scan, at the price of O(P log P) additional *matrix-matrix*
    products — the overhead the paper notes is "hidden by adding more
    hardware" in Fettweis & Meyr's decoder.
    """
    executor = executor or SerialExecutor()
    n = problem.num_stages
    ranges = partition_stages(n, num_procs)
    P = len(ranges)
    metrics = RunMetrics(
        num_procs=P, num_stages=n, stage_width=problem.stage_width(n)
    )

    # Superstep 1: per-processor partial products (matrix-matrix).
    def make_product_task(rg):
        def task():
            product = None
            work = 0.0
            for i in rg.stages():
                a = problem.stage_matrix(i)
                if product is None:
                    product = a
                else:
                    work += a.shape[0] * a.shape[1] * product.shape[1]
                    product = tropical_matmat(a, product)
            return product, work

        return task

    results = executor.run_superstep([make_product_task(rg) for rg in ranges])
    products = [r[0] for r in results]
    metrics.record(
        SuperstepRecord(
            label="partial-products", work=[r[1] for r in results], phase="forward"
        )
    )

    # Superstep 2: prefix over the P products to get boundary vectors.
    if tree_scan:
        boundaries, scan_records = _tree_prefix_boundaries(
            problem.initial_vector(), products, P
        )
        for record in scan_records:
            metrics.record(record)
    else:
        # Sequential scan: the serial bottleneck of the blocked approach
        # (the variant the paper's complexity argument describes).
        boundaries = [problem.initial_vector()]
        scan_work = 0.0
        for M in products:
            scan_work += M.shape[0] * M.shape[1]
            boundaries.append(tropical_matvec(M, boundaries[-1]))
        scan_row = [0.0] * P
        scan_row[0] = scan_work
        metrics.record(
            SuperstepRecord(
                label="prefix-scan",
                work=scan_row,
                phase="forward",
                comm=[
                    CommEvent(src=p, dst=p + 1, num_bytes=8 * boundaries[p].size)
                    for p in range(1, P)
                ],
            )
        )

    # Superstep 3: local re-sweep for stage vectors + predecessors.
    s_store: list[np.ndarray | None] = [None] * (n + 1)
    s_store[0] = boundaries[0]
    pred_store: list[np.ndarray | None] = [None] * (n + 1)

    def make_sweep_task(rg, start):
        def task():
            v = start
            out_s, out_pred = {}, {}
            work = 0.0
            for i in rg.stages():
                v, p = problem.apply_stage_with_pred(i, v)
                out_s[i] = v
                out_pred[i] = p
                work += problem.stage_cost(i)
            return out_s, out_pred, work

        return task

    sweep = executor.run_superstep(
        [make_sweep_task(rg, boundaries[idx]) for idx, rg in enumerate(ranges)]
    )
    work_row = []
    for out_s, out_pred, work in sweep:
        for i, v in out_s.items():
            s_store[i] = v
        for i, p in out_pred.items():
            pred_store[i] = p
        work_row.append(work)
    metrics.record(
        SuperstepRecord(label="re-sweep", work=work_row, phase="forward")
    )

    final = np.asarray(s_store[n])
    if problem.tracks_stage_objective:
        score, obj_stage, obj_cell = best_stage_objective(
            problem, ((i, np.asarray(s_store[i])) for i in range(n + 1))
        )
        path = backward_sequential(
            pred_store, start_stage=obj_stage, start_cell=obj_cell
        )
    else:
        score, obj_stage, obj_cell = float(final[0]), None, None
        path = backward_sequential(pred_store)
    bwd_row = [0.0] * P
    bwd_row[0] = float(n)
    metrics.record(
        SuperstepRecord(label="backward", work=bwd_row, phase="backward")
    )

    return LTDPSolution(
        path=path,
        score=score,
        final_vector=final,
        metrics=metrics,
        objective_stage=obj_stage,
        objective_cell=obj_cell,
    )
