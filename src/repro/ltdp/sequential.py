"""The sequential LTDP algorithm — paper Figure 2.

Forward phase: iterate ``s_i = A_i ⨂ s_{i-1}`` keeping the predecessor
products ``p_i = A_i ⋆ s_{i-1}``.  Backward phase: follow predecessors
from subproblem 0 of the last stage.

This is both the correctness reference for the parallel algorithm and
the baseline whose (modeled or measured) runtime defines speedup.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ZeroVectorError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.machine.metrics import RunMetrics, SuperstepRecord
from repro.semiring.tropical import NEG_INF
from repro.semiring.vector import is_zero_vector

__all__ = ["forward_sequential", "backward_sequential", "solve_sequential"]


def forward_sequential(
    problem: LTDPProblem,
    *,
    keep_stage_vectors: bool = False,
) -> tuple[
    np.ndarray,
    list[np.ndarray | None],
    list[np.ndarray] | None,
    tuple[float, int, int] | None,
]:
    """Run the forward phase; return ``(s_n, pred, stage_vectors, best_objective)``.

    ``pred[i]`` for ``1 ≤ i ≤ n`` holds the predecessor product at stage
    ``i`` (``pred[0]`` is ``None``).  ``stage_vectors[i]`` is ``s_i``
    when requested (index 0 = the initial vector), else ``None``.
    For ``tracks_stage_objective`` problems ``best_objective`` is the
    running ``(value, stage, cell)`` reduction (earliest stage wins
    ties); otherwise ``None``.
    """
    n = problem.num_stages
    s = problem.initial_vector()
    pred: list[np.ndarray | None] = [None] * (n + 1)
    vectors: list[np.ndarray] | None = [s.copy()] if keep_stage_vectors else None
    best: tuple[float, int, int] | None = None
    if problem.tracks_stage_objective:
        val, cell = problem.stage_objective(0, s)
        best = (val, 0, cell)
    for i in range(1, n + 1):
        s, p = problem.apply_stage_with_pred(i, s)
        if is_zero_vector(s):
            raise ZeroVectorError(
                f"stage {i} produced an all--inf vector; the instance has a "
                "trivial transformation (see paper §4.5)"
            )
        pred[i] = p
        if vectors is not None:
            vectors.append(s.copy())
        if best is not None:
            val, cell = problem.stage_objective(i, s)
            if val > best[0]:
                best = (val, i, cell)
    return s, pred, vectors, best


def backward_sequential(
    pred: list[np.ndarray | None],
    *,
    start_stage: int | None = None,
    start_cell: int = 0,
) -> np.ndarray:
    """Follow predecessors from ``start_cell`` of ``start_stage`` (default:
    subproblem 0 of the last stage, Fig 2 lines 9-12).

    Returns ``path`` with ``path[i]`` = optimal subproblem index at
    stage ``i`` (length ``n + 1``).  Entries beyond ``start_stage`` are
    left 0 (used by stage-objective problems, whose answer can end at
    any stage).
    """
    n = len(pred) - 1
    if start_stage is None:
        start_stage = n
    path = np.zeros(n + 1, dtype=np.int64)
    path[start_stage] = start_cell
    x = start_cell
    for i in range(start_stage, 0, -1):
        p = pred[i]
        assert p is not None, f"missing predecessor product for stage {i}"
        x = int(p[x])
        path[i - 1] = x
    return path


def best_stage_objective(
    problem: LTDPProblem, indexed_vectors
) -> tuple[float, int, int]:
    """Reduce per-stage objectives: ``(value, stage, cell)`` of the optimum.

    ``indexed_vectors`` yields ``(stage_index, vector)`` pairs.
    Tie-break: earliest stage, then the cell the problem's own
    (shift-invariant) ``stage_objective`` reports.
    """
    best_val = NEG_INF
    best_stage = 0
    best_cell = 0
    for i, v in indexed_vectors:
        val, cell = problem.stage_objective(i, v)
        if val > best_val:
            best_val, best_stage, best_cell = val, i, cell
    return best_val, best_stage, best_cell


def solve_sequential(
    problem: LTDPProblem,
    *,
    keep_stage_vectors: bool = False,
    with_metrics: bool = False,
) -> LTDPSolution:
    """Solve an LTDP instance with the sequential algorithm (Fig 2).

    With ``with_metrics`` the run is recorded as a single-processor
    :class:`RunMetrics` so the cost model can price it consistently
    with parallel runs.
    """
    final, pred, vectors, best = forward_sequential(
        problem, keep_stage_vectors=keep_stage_vectors
    )
    if best is not None:
        score, obj_stage, obj_cell = best
        path = backward_sequential(pred, start_stage=obj_stage, start_cell=obj_cell)
    else:
        score, obj_stage, obj_cell = float(final[0]), None, None
        path = backward_sequential(pred)
    metrics = None
    if with_metrics:
        metrics = RunMetrics(
            num_procs=1,
            num_stages=problem.num_stages,
            stage_width=problem.max_stage_width(),
        )
        metrics.record(
            SuperstepRecord(
                label="forward", work=[problem.total_cells()], phase="forward"
            )
        )
        metrics.record(
            SuperstepRecord(
                label="backward",
                work=[float(problem.num_stages)],
                phase="backward",
            )
        )
    return LTDPSolution(
        path=path,
        score=float(score),
        final_vector=final,
        metrics=metrics,
        stage_vectors=vectors,
        objective_stage=obj_stage,
        objective_cell=obj_cell,
    )
