"""The §4.8 graph view: an LTDP instance as a longest-path problem.

"One can view solving a LTDP problem as computing shortest/longest
paths in a graph.  In this graph, each subproblem is a node and
directed edges represent the dependences between subproblems … Entries
in the partial product ``M_{l→r}`` represent the cost of the shortest
(or longest) path from a node in stage l to a node in stage r.  The
rank of this product is 1 if these shortest paths go through a single
node in some stage between l and r."

This module materializes that view with :mod:`networkx`:

- :func:`build_stage_graph` — the layered DAG of an LTDP instance;
- :func:`longest_path_solution` — independent solve via DAG longest
  path (a correctness oracle for the tropical solvers);
- :func:`articulation_stages` — stages whose single node carries every
  optimal l→r path (the paper's I-90 "choke point" intuition): a
  choke point between l and r certifies ``rank(M_{l→r}) = 1``.

Intended for analysis, tests and teaching; it materializes O(stages ×
width²) edges, so keep instances moderate.
"""

from __future__ import annotations

import numpy as np

from repro.ltdp.problem import LTDPProblem
from repro.ltdp.sequential import forward_sequential
from repro.semiring.tropical import NEG_INF

__all__ = [
    "build_stage_graph",
    "longest_path_solution",
    "articulation_stages",
    "optimal_node_sets",
]


def _node(stage: int, cell: int) -> tuple[int, int]:
    return (stage, cell)


def build_stage_graph(problem: LTDPProblem):
    """The layered dependence DAG with edge weights ``A_i[j, k]``.

    Nodes are ``(stage, cell)``; an edge ``(i-1, k) → (i, j)`` carries
    weight ``A_i[j, k]`` when finite.  A virtual ``source`` node feeds
    stage 0 with the initial-vector values and a virtual ``sink``
    collects subproblem 0 of the last stage (the Fig 2 convention).
    """
    import networkx as nx

    g = nx.DiGraph()
    n = problem.num_stages
    init = problem.initial_vector()
    g.add_node("source")
    for cell, value in enumerate(init):
        if value != NEG_INF:
            g.add_edge("source", _node(0, cell), weight=float(value))
    for i in range(1, n + 1):
        A = problem.stage_matrix(i)
        rows, cols = A.shape
        for j in range(rows):
            for k in range(cols):
                w = A[j, k]
                if w != NEG_INF:
                    g.add_edge(_node(i - 1, k), _node(i, j), weight=float(w))
    g.add_node("sink")
    g.add_edge(_node(n, 0), "sink", weight=0.0)
    return g


def longest_path_solution(problem: LTDPProblem) -> tuple[float, np.ndarray]:
    """Solve by DAG longest path; returns ``(score, path)``.

    ``path`` follows the library convention (``path[i]`` = cell at
    stage ``i``).  An independent oracle: no tropical code involved
    beyond the probed matrices.
    """
    import networkx as nx

    g = build_stage_graph(problem)
    # networkx dag_longest_path maximizes total weight over all paths,
    # but we need source→sink specifically; negate and use shortest.
    for _u, _v, d in g.edges(data=True):
        d["negw"] = -d["weight"]
    length, nx_path = nx.single_source_bellman_ford(g, "source", "sink", weight="negw")
    n = problem.num_stages
    path = np.zeros(n + 1, dtype=np.int64)
    for node in nx_path:
        if isinstance(node, tuple):
            stage, cell = node
            path[stage] = cell
    return -float(length), path


def optimal_node_sets(
    problem: LTDPProblem, *, tol: float = 0.0
) -> list[set[int]]:
    """Per stage, the set of cells lying on *some* optimal source→sink path.

    Computed from forward values + backward-to-go values (standard
    DP criticality): cell ``c`` of stage ``i`` is optimal iff
    ``forward[i][c] + togo[i][c] == optimum``.
    """
    n = problem.num_stages
    _, _, fwd, _ = forward_sequential(problem, keep_stage_vectors=True)
    assert fwd is not None
    # Backward "to-go" values: togo[n] = unit on cell 0.
    togo: list[np.ndarray] = [None] * (n + 1)  # type: ignore[list-item]
    last = np.full(problem.stage_width(n), NEG_INF)
    last[0] = 0.0
    togo[n] = last
    for i in range(n, 0, -1):
        A = problem.stage_matrix(i)
        with np.errstate(invalid="ignore"):
            togo[i - 1] = np.max(A + togo[i][:, np.newaxis], axis=0)
    optimum = float(fwd[n][0])
    out: list[set[int]] = []
    for i in range(n + 1):
        with np.errstate(invalid="ignore"):
            total = fwd[i] + togo[i]
        cells = {
            int(c)
            for c in np.where(np.isfinite(total) & (np.abs(total - optimum) <= tol))[0]
        }
        out.append(cells)
    return out


def articulation_stages(problem: LTDPProblem, *, tol: float = 0.0) -> list[int]:
    """Stages whose optimal-node set is a single cell (§4.8 choke points).

    If every optimal path from stage ``l`` to stage ``r`` threads one
    node at some stage in between, the partial product ``M_{l→r}``
    approaches rank 1 — this function finds those single-node stages
    for the *global* optimum, which is the practical signal rank
    convergence feeds on.
    """
    return [i for i, cells in enumerate(optimal_node_sets(problem, tol=tol)) if len(cells) == 1]
