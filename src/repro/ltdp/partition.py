"""Stage partitioning: which processor owns which stages.

Paper Fig 4 line 5: processor ``p`` owns stages ``(l_p .. r_p]`` with
``l_p = n/P·(p-1)`` and ``r_p = n/P·p``.  We generalize to arbitrary
``n`` by distributing the remainder over the leading processors, and
clamp the processor count when ``P > n`` (extra processors would own
empty ranges and contribute nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StageRange", "partition_stages"]


@dataclass(frozen=True)
class StageRange:
    """Half-open-from-the-left stage range ``(lo .. hi]`` owned by one processor."""

    proc: int  # 1-based processor id, matching the paper
    lo: int  # exclusive
    hi: int  # inclusive

    @property
    def num_stages(self) -> int:
        return self.hi - self.lo

    def stages(self) -> range:
        """The stage indices this processor computes: ``lo+1 .. hi``."""
        return range(self.lo + 1, self.hi + 1)

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValueError(f"empty stage range ({self.lo}..{self.hi}]")


def partition_stages(num_stages: int, num_procs: int) -> list[StageRange]:
    """Split ``1..num_stages`` into contiguous per-processor ranges.

    Returns at most ``min(num_procs, num_stages)`` non-empty ranges; the
    first ``num_stages % P`` processors get one extra stage.  Ranges
    tile the stage sequence: ``ranges[0].lo == 0`` and
    ``ranges[-1].hi == num_stages``.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if num_procs < 1:
        raise ValueError(f"num_procs must be >= 1, got {num_procs}")
    p = min(num_procs, num_stages)
    base, extra = divmod(num_stages, p)
    ranges: list[StageRange] = []
    lo = 0
    for proc in range(1, p + 1):
        size = base + (1 if proc <= extra else 0)
        ranges.append(StageRange(proc=proc, lo=lo, hi=lo + size))
        lo += size
    assert lo == num_stages
    return ranges
