"""Linear-Tropical Dynamic Programming (LTDP) — the paper's core.

- :mod:`repro.ltdp.problem` — the :class:`LTDPProblem` abstraction
  (stage kernels hide the ⨂ / ⋆ implementation details, paper §3);
- :mod:`repro.ltdp.matrix_problem` — LTDP instance from explicit
  transformation matrices (the literal Equation (2) form);
- :mod:`repro.ltdp.sequential` — the sequential algorithm (Fig 2);
- :mod:`repro.ltdp.parallel` — the parallel forward (Fig 4) and
  backward (Fig 5) algorithms with their fix-up loops;
- :mod:`repro.ltdp.partition` — stage partitioning across processors;
- :mod:`repro.ltdp.delta` — the delta-computation optimization (§4.7);
- :mod:`repro.ltdp.convergence` — the rank-convergence measurement
  harness behind Table 1 (§6.1);
- :mod:`repro.ltdp.validation` — LTDP well-formedness checks
  (linearity, non-trivial kernels, all-non-zero preservation, §4.5).
"""

from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.ltdp.sequential import solve_sequential, forward_sequential
from repro.ltdp.parallel import solve_parallel, ParallelOptions
from repro.ltdp.partition import partition_stages, StageRange
from repro.ltdp.delta import (
    delta_encode,
    delta_decode,
    changed_delta_count,
    delta_fixup_work,
)
from repro.ltdp.convergence import (
    ConvergenceStudy,
    measure_convergence_steps,
    steps_to_parallel,
    partial_product_rank_profile,
)
from repro.ltdp.validation import validate_problem, ValidationReport
from repro.ltdp.blocked import solve_blocked

__all__ = [
    "solve_blocked",
    "LTDPProblem",
    "LTDPSolution",
    "MatrixLTDPProblem",
    "random_matrix_problem",
    "solve_sequential",
    "forward_sequential",
    "solve_parallel",
    "ParallelOptions",
    "partition_stages",
    "StageRange",
    "delta_encode",
    "delta_decode",
    "changed_delta_count",
    "delta_fixup_work",
    "ConvergenceStudy",
    "measure_convergence_steps",
    "steps_to_parallel",
    "partial_product_rank_profile",
    "validate_problem",
    "ValidationReport",
]
