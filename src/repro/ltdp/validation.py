"""LTDP well-formedness checks.

A problem plugged into the parallel solver must satisfy:

1. **Tropical linearity** of every stage kernel (Equation (1)):
   ``f(u ⊕ v) = f(u) ⊕ f(v)`` and ``f(v ⊗ c) = f(v) ⊗ c`` — otherwise
   the rank-convergence argument (and hence fix-up early exit) is
   unsound.  Smith-Waterman's ``max(…, 0)`` restart, for instance, must
   be linearized with a zero-anchor subproblem before it qualifies.
2. **Non-triviality** (§4.5): every stage maps all-non-zero vectors to
   all-non-zero vectors (Lemma 4's precondition, checked empirically).
3. **Kernel/matrix agreement**: the fast kernel equals the explicit
   probed matrix applied densely.
4. **Predecessor consistency**: ``apply_stage_with_pred`` returns
   arg-max indices that actually achieve the reported maxima.

`validate_problem` samples stages and random vectors; it is O(width²)
per sampled stage and meant for tests, CI and user onboarding, not hot
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ltdp.problem import LTDPProblem
from repro.semiring.tropical import tropical_matvec
from repro.semiring.vector import is_all_nonzero, random_nonzero_vector

__all__ = ["ValidationReport", "validate_problem"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_problem`; falsy when any check failed."""

    failures: list[str] = field(default_factory=list)
    stages_checked: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_failed(self) -> None:
        if self.failures:
            from repro.exceptions import ProblemDefinitionError

            raise ProblemDefinitionError(
                "LTDP validation failed:\n  " + "\n  ".join(self.failures)
            )


def _close(u: np.ndarray, v: np.ndarray, tol: float) -> bool:
    if u.shape != v.shape:
        return False
    finite_u = np.isfinite(u)
    finite_v = np.isfinite(v)
    if not np.array_equal(finite_u, finite_v):
        return False
    if not finite_u.any():
        return True
    return bool(np.max(np.abs(u[finite_u] - v[finite_v])) <= tol)


def validate_problem(
    problem: LTDPProblem,
    *,
    num_stage_samples: int = 5,
    vectors_per_stage: int = 3,
    seed: int = 0,
    tol: float = 1e-9,
) -> ValidationReport:
    """Sample-check that ``problem`` is a legal LTDP instance.

    Checks linearity, non-triviality, kernel/matrix agreement and
    predecessor consistency on ``num_stage_samples`` stages spread over
    the stage sequence.  Deterministic given ``seed``.
    """
    rng = np.random.default_rng(seed)
    report = ValidationReport()
    n = problem.num_stages
    stages = sorted(
        {int(s) for s in np.linspace(1, n, num=min(num_stage_samples, n)).round()}
    )
    report.stages_checked = stages

    for i in stages:
        w_in = problem.stage_width(i - 1)
        try:
            A = problem.stage_matrix(i)
        except Exception as exc:  # noqa: BLE001 - collect, don't crash
            report.failures.append(f"stage {i}: stage_matrix probe raised {exc!r}")
            continue
        if not np.isfinite(A).any(axis=1).all():
            report.failures.append(
                f"stage {i}: transformation matrix has an all--inf row "
                "(trivial subproblem, §4.5)"
            )
        for t in range(vectors_per_stage):
            u = random_nonzero_vector(w_in, rng)
            v = random_nonzero_vector(w_in, rng)
            fu = problem.apply_stage(i, u)
            fv = problem.apply_stage(i, v)
            # Kernel agrees with the probed matrix.
            ref = tropical_matvec(A, u)
            if not _close(fu, ref, tol):
                report.failures.append(
                    f"stage {i} trial {t}: kernel disagrees with probed matrix"
                )
            # Additivity: f(max(u, v)) == max(f(u), f(v)).
            f_join = problem.apply_stage(i, np.maximum(u, v))
            if not _close(f_join, np.maximum(fu, fv), tol):
                report.failures.append(
                    f"stage {i} trial {t}: kernel is not ⊕-additive "
                    "(not tropically linear)"
                )
            # Homogeneity: f(v + c) == f(v) + c.
            c = float(rng.uniform(-3.0, 3.0))
            f_scaled = problem.apply_stage(i, v + c)
            expected = fv.copy()
            expected[np.isfinite(expected)] += c
            if not _close(f_scaled, expected, tol):
                report.failures.append(
                    f"stage {i} trial {t}: kernel is not ⊗-homogeneous "
                    "(not tropically linear)"
                )
            # Lemma 4 precondition: all-non-zero in ⇒ all-non-zero out.
            if not is_all_nonzero(fu):
                report.failures.append(
                    f"stage {i} trial {t}: all-non-zero vector mapped to a "
                    "vector with -inf entries — non-trivial-matrix "
                    "assumption violated for the parallel algorithm"
                )
            # Predecessor consistency.
            vals, pred = problem.apply_stage_with_pred(i, v)
            if not _close(vals, fv, tol):
                report.failures.append(
                    f"stage {i} trial {t}: apply_stage_with_pred values "
                    "disagree with apply_stage"
                )
            achieved = A[np.arange(A.shape[0]), pred] + v[pred]
            if not _close(achieved, fv, tol):
                report.failures.append(
                    f"stage {i} trial {t}: predecessor indices do not achieve "
                    "the stage maxima"
                )
    return report
