"""LTDP instances given by explicit transformation matrices.

This is the literal Equation (2) form ``s_i = A_i ⨂ s_{i-1}``.  It is
the workhorse of the test-suite (random instances, adversarial
instances) and of rank studies; the production problems in
:mod:`repro.problems` use implicit kernels instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ProblemDefinitionError, TrivialMatrixError
from repro.ltdp.problem import LTDPProblem
from repro.semiring.tropical import (
    NEG_INF,
    as_tropical_matrix,
    as_tropical_vector,
    matvec_with_pred,
    tropical_matvec,
)

__all__ = ["MatrixLTDPProblem", "random_matrix_problem"]


class MatrixLTDPProblem(LTDPProblem):
    """An LTDP problem defined by an initial vector and explicit matrices.

    Parameters
    ----------
    initial:
        The base-case vector ``s_0``.
    matrices:
        ``A_1 .. A_n``; ``A_i`` must have ``width(i)`` rows and
        ``width(i-1)`` columns.  Every matrix must be *non-trivial*
        (each row has a finite entry, §4.5) unless
        ``allow_trivial=True`` (used by tests that exercise the
        failure path).
    """

    def __init__(
        self,
        initial: np.ndarray,
        matrices: Sequence[np.ndarray],
        *,
        allow_trivial: bool = False,
    ) -> None:
        if len(matrices) == 0:
            raise ProblemDefinitionError("at least one transformation matrix required")
        self._initial = as_tropical_vector(initial, copy=True)
        self._matrices: list[np.ndarray] = []
        width = self._initial.shape[0]
        for idx, m in enumerate(matrices, start=1):
            a = as_tropical_matrix(m, copy=True)
            if a.shape[1] != width:
                raise ProblemDefinitionError(
                    f"matrix A_{idx} has {a.shape[1]} columns but stage "
                    f"{idx - 1} has width {width}"
                )
            if not allow_trivial and not np.isfinite(a).any(axis=1).all():
                raise TrivialMatrixError(
                    f"matrix A_{idx} has a row with no finite entries; remove "
                    "trivial subproblems first (paper §4.5)"
                )
            a.setflags(write=False)
            self._matrices.append(a)
            width = a.shape[0]

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self._matrices)

    def stage_width(self, i: int) -> int:
        if i == 0:
            return self._initial.shape[0]
        self.check_stage_index(i)
        return self._matrices[i - 1].shape[0]

    def initial_vector(self) -> np.ndarray:
        return self._initial.copy()

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        return tropical_matvec(self._matrices[i - 1], v)

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        return matvec_with_pred(self._matrices[i - 1], v)

    def stage_matrix(self, i: int) -> np.ndarray:
        self.check_stage_index(i)
        return self._matrices[i - 1]

    def stage_cost(self, i: int) -> float:
        # Dense mat-vec touches width_out × width_in additions.
        self.check_stage_index(i)
        rows, cols = self._matrices[i - 1].shape
        return float(rows * cols)

    def edge_weight(self, i: int, j: int, k: int) -> float:
        """O(1) matrix entry lookup for the exact-score epilogue."""
        self.check_stage_index(i)
        return float(self._matrices[i - 1][j, k])


def random_matrix_problem(
    num_stages: int,
    width: int,
    rng: np.random.Generator,
    *,
    density: float = 1.0,
    low: float = -5.0,
    high: float = 5.0,
    integer: bool = False,
) -> MatrixLTDPProblem:
    """A random LTDP instance for tests and rank-convergence studies.

    ``density`` < 1 zeroes out (to ``-inf``) a fraction of entries while
    guaranteeing non-triviality (the diagonal is kept finite).  With
    ``integer=True`` all weights are integers, making tropical
    parallelism checks exact in float64.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    matrices = []
    for _ in range(num_stages):
        if integer:
            a = rng.integers(int(low), int(high) + 1, size=(width, width)).astype(
                np.float64
            )
        else:
            a = rng.uniform(low, high, size=(width, width))
        if density < 1.0:
            mask = rng.random((width, width)) >= density
            a[mask] = NEG_INF
            np.fill_diagonal(a, np.where(np.isfinite(np.diag(a)), np.diag(a), 0.0))
        matrices.append(a)
    if integer:
        initial = rng.integers(int(low), int(high) + 1, size=width).astype(np.float64)
    else:
        initial = rng.uniform(low, high, size=width)
    return MatrixLTDPProblem(initial, matrices)
