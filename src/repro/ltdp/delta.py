"""Delta computation — the §4.7 fix-up optimization.

Represent a stage vector by its first entry plus adjacent differences:
``[1, 2, 3, 4] → (1, [1, 1, 1])``.  Tropically parallel vectors then
agree *exactly* except in the anchor entry, and "almost parallel"
vectors (the low-rank-but-not-rank-1 regime the paper observes long
before full convergence) agree in most delta positions.  A fix-up
sweep over deltas therefore only needs to propagate the differing
positions, which is what makes the optimization "crucial for instances,
such as LCS and Needleman-Wunsch, for which the number of solutions in
a stage is large and the convergence to low-rank is much faster than
the convergence to rank 1".

Our parallel solver recomputes stage vectors with the full vectorized
kernel (NumPy makes the dense sweep the fast path) but, in delta mode,
*accounts* fix-up work as ``changed-delta count + 1`` per stage — the
cell count a sparse delta implementation would touch.  The recorded
work drives the simulated clock; results are unchanged either way.
DESIGN.md documents this substitution.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError

__all__ = [
    "delta_encode",
    "delta_decode",
    "changed_delta_count",
    "delta_fixup_work",
]


def delta_encode(v: np.ndarray) -> tuple[float, np.ndarray]:
    """``v → (v[0], diff(v))``.

    ``-inf`` entries are legal in stage vectors (band edges); a
    difference touching ``-inf`` is encoded as ``nan`` so that the
    position participates in change counting (any recomputation there
    must be inspected) while staying distinguishable from finite deltas.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise DimensionError(f"expected non-empty 1-D vector, got shape {v.shape}")
    with np.errstate(invalid="ignore"):
        deltas = np.diff(v)
    # -inf - -inf = nan already; finite - -inf = +inf; -inf - finite = -inf.
    # Collapse every non-finite difference to nan for a canonical encoding.
    deltas[~np.isfinite(deltas)] = np.nan
    return float(v[0]), deltas


def delta_decode(anchor: float, deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_encode` for all-finite vectors.

    Vectors containing ``-inf`` do not round-trip (the encoding loses
    which side of a ``nan`` delta was ``-inf``); callers needing exact
    reconstruction must keep the mask separately.  Raises when the
    anchor is non-finite or any delta is ``nan``.
    """
    anchor = float(anchor)
    if not np.isfinite(anchor):
        raise ValueError(
            f"cannot decode from non-finite anchor {anchor!r}: a vector "
            "whose first entry is -inf (or nan) does not round-trip "
            "through delta encoding — keep the -inf mask separately, as "
            "delta_encode's contract requires"
        )
    deltas = np.asarray(deltas, dtype=np.float64)
    if np.isnan(deltas).any():
        raise ValueError("cannot decode deltas containing -inf markers")
    out = np.empty(deltas.size + 1, dtype=np.float64)
    out[0] = anchor
    np.cumsum(deltas, out=out[1:])
    out[1:] += anchor
    return out


def changed_delta_count(old: np.ndarray, new: np.ndarray) -> int:
    """Number of delta positions that differ between two stage vectors.

    Tropically parallel vectors give 0.  ``nan`` markers (band-edge
    ``-inf`` adjacencies) compare equal to each other — a masked-out
    position that stays masked is not a change.
    """
    old = np.asarray(old, dtype=np.float64)
    new = np.asarray(new, dtype=np.float64)
    if old.shape != new.shape:
        raise DimensionError(f"incompatible shapes {old.shape} and {new.shape}")
    if old.size < 2:
        return 0
    _, d_old = delta_encode(old)
    _, d_new = delta_encode(new)
    both_nan = np.isnan(d_old) & np.isnan(d_new)
    with np.errstate(invalid="ignore"):
        differ = d_old != d_new
    return int(np.count_nonzero(differ & ~both_nan))


def delta_fixup_work(old: np.ndarray, new: np.ndarray) -> float:
    """Work charged to a delta-mode fix-up stage: changed deltas + the anchor."""
    return float(changed_delta_count(old, new) + 1)
