"""Delta computation — the §4.7 fix-up optimization.

Represent a stage vector by its first entry plus adjacent differences:
``[1, 2, 3, 4] → (1, [1, 1, 1])``.  Tropically parallel vectors then
agree *exactly* except in the anchor entry, and "almost parallel"
vectors (the low-rank-but-not-rank-1 regime the paper observes long
before full convergence) agree in most delta positions.  A fix-up
sweep over deltas therefore only needs to propagate the differing
positions, which is what makes the optimization "crucial for instances,
such as LCS and Needleman-Wunsch, for which the number of solutions in
a stage is large and the convergence to low-rank is much faster than
the convergence to rank 1".

In delta mode (``use_delta=True``) the fix-up supersteps run this as
*actual computation*, not an accounting substitution:

- the planner ships each re-dispatched processor a
  :class:`BoundaryDiff` — the anchor offset plus the positions of its
  left neighbour's boundary that changed since the previous round —
  instead of the full boundary vector, whenever the diff is smaller
  (:func:`encode_boundary_diff`); the processor reconstructs the new
  boundary bit-exactly from its resident copy;
- problems that implement a sparse stage kernel
  (:meth:`~repro.ltdp.problem.LTDPProblem.apply_stage_sparse` — the
  banded LCS / Needleman–Wunsch kernel does) repair each resident
  stage by diffing in *delta* space — one changed delta shifts a whole
  suffix, so the kernel tracks the piecewise-constant offset between
  new and cached input, recomputes exactly only the entries straddling
  an offset step and shifts the rest — reusing the cached evaluation
  state from the stage's previous computation and falling back to the
  dense kernel when the changed-delta fraction exceeds the
  ``delta_crossover`` threshold;
- a stage short-circuits the moment its recomputed vector is
  tropically parallel to the stored one, exactly as in dense mode.

Results are bit-identical to the dense sweep by construction (the
sparse kernel is only enabled on integral-score instances, where every
float64 operation it reorders is exact).  Problems without a sparse
kernel fall back to the dense kernel and charge the *modeled* delta
cost :func:`delta_fixup_work` (``changed-delta count + 1`` — the cell
count a sparse implementation would touch), which keeps the cost-model
ablations meaningful for non-banded instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionError

__all__ = [
    "delta_encode",
    "delta_decode",
    "changed_delta_count",
    "delta_fixup_work",
    "BoundaryDiff",
    "encode_boundary_diff",
]


def delta_encode(v: np.ndarray) -> tuple[float, np.ndarray]:
    """``v → (v[0], diff(v))``.

    ``-inf`` entries are legal in stage vectors (band edges); a
    difference touching ``-inf`` is encoded as ``nan`` so that the
    position participates in change counting (any recomputation there
    must be inspected) while staying distinguishable from finite deltas.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise DimensionError(f"expected non-empty 1-D vector, got shape {v.shape}")
    with np.errstate(invalid="ignore"):
        deltas = np.diff(v)
    # -inf - -inf = nan already; finite - -inf = +inf; -inf - finite = -inf.
    # Collapse every non-finite difference to nan for a canonical encoding.
    deltas[~np.isfinite(deltas)] = np.nan
    return float(v[0]), deltas


def delta_decode(anchor: float, deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_encode` for all-finite vectors.

    Vectors containing ``-inf`` do not round-trip (the encoding loses
    which side of a ``nan`` delta was ``-inf``); callers needing exact
    reconstruction must keep the mask separately.  Raises when the
    anchor is non-finite or any delta is ``nan``.
    """
    anchor = float(anchor)
    if not np.isfinite(anchor):
        raise ValueError(
            f"cannot decode from non-finite anchor {anchor!r}: a vector "
            "whose first entry is -inf (or nan) does not round-trip "
            "through delta encoding — keep the -inf mask separately, as "
            "delta_encode's contract requires"
        )
    deltas = np.asarray(deltas, dtype=np.float64)
    if np.isnan(deltas).any():
        raise ValueError("cannot decode deltas containing -inf markers")
    out = np.empty(deltas.size + 1, dtype=np.float64)
    out[0] = anchor
    np.cumsum(deltas, out=out[1:])
    out[1:] += anchor
    return out


def changed_delta_count(old: np.ndarray, new: np.ndarray) -> int:
    """Number of delta positions that differ between two stage vectors.

    Tropically parallel vectors give 0.  ``nan`` markers (band-edge
    ``-inf`` adjacencies) compare equal to each other — a masked-out
    position that stays masked is not a change.
    """
    old = np.asarray(old, dtype=np.float64)
    new = np.asarray(new, dtype=np.float64)
    if old.shape != new.shape:
        raise DimensionError(f"incompatible shapes {old.shape} and {new.shape}")
    if old.size < 2:
        return 0
    _, d_old = delta_encode(old)
    _, d_new = delta_encode(new)
    both_nan = np.isnan(d_old) & np.isnan(d_new)
    with np.errstate(invalid="ignore"):
        differ = d_old != d_new
    return int(np.count_nonzero(differ & ~both_nan))


def delta_fixup_work(old: np.ndarray, new: np.ndarray) -> float:
    """Work charged to a delta-mode fix-up stage: changed deltas + the anchor."""
    return float(changed_delta_count(old, new) + 1)


@dataclass(frozen=True)
class BoundaryDiff:
    """Sparse update turning a processor's resident input boundary into
    the new one: an anchor offset plus explicit ``(index, value)``
    overrides for the positions the offset does not explain.

    Reconstruction (:meth:`apply`) is bit-exact by construction: the
    encoder keeps an explicit override for every position where
    ``old + offset`` is not *numerically equal* to ``new``, so applying
    the diff to the same resident ``old`` reproduces ``new`` (up to the
    sign of zero, which no tropical operation can observe).
    """

    offset: float
    idx: np.ndarray  # int64 positions of the explicit overrides
    values: np.ndarray  # float64 new values at those positions
    size: int  # length of the boundary vector (sanity check)

    def apply(self, old: np.ndarray) -> np.ndarray:
        """Reconstruct the new boundary from the resident ``old`` copy."""
        old = np.asarray(old, dtype=np.float64)
        if old.shape != (self.size,):
            raise DimensionError(
                f"boundary diff encoded for size {self.size}, got {old.shape}"
            )
        # ``old + 0.0`` flips -0.0 to +0.0; skip the add so the common
        # no-offset case is a bitwise copy.
        out = old.copy() if self.offset == 0.0 else old + self.offset
        if self.idx.size:
            out[self.idx] = self.values
        return out

    @property
    def num_bytes(self) -> int:
        """Modeled wire size: offset + length + (index, value) pairs."""
        return 8 * (2 + 2 * int(self.idx.size))


def encode_boundary_diff(old: np.ndarray, new: np.ndarray) -> BoundaryDiff:
    """Diff ``new`` against ``old`` as an anchor offset + sparse overrides.

    The offset is the first-entry difference when both anchors are
    finite (the §4.7 anchor), else 0; every position where
    ``old + offset != new`` becomes an explicit override.  Always
    succeeds — callers compare :attr:`BoundaryDiff.num_bytes` against
    the dense ``8 * size`` to decide whether shipping the diff is
    actually cheaper.
    """
    old = np.asarray(old, dtype=np.float64)
    new = np.asarray(new, dtype=np.float64)
    if old.shape != new.shape or old.ndim != 1:
        raise DimensionError(f"incompatible shapes {old.shape} and {new.shape}")
    offset = 0.0
    if np.isfinite(old[0]) and np.isfinite(new[0]):
        offset = float(new[0] - old[0])
    aligned = old if offset == 0.0 else old + offset
    # -inf == -inf is True, so stable masked positions need no override;
    # a position whose mask changed compares unequal and gets one.
    with np.errstate(invalid="ignore"):
        changed = aligned != new
    idx = np.flatnonzero(changed).astype(np.int64)
    return BoundaryDiff(
        offset=offset, idx=idx, values=new[idx].copy(), size=int(new.size)
    )
