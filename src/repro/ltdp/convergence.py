"""Rank-convergence measurement — the §6.1 / Table 1 methodology.

"For a LTDP instance … we first compute the actual solution vectors at
each stage.  Then, starting from a random all-non-zero vector at 200
different stages, we measured the number of steps required to generate
a vector parallel to the actual solution vector."

:func:`measure_convergence_steps` reproduces that protocol.
:func:`partial_product_rank_profile` additionally tracks upper bounds
on the rank of the partial products themselves (feasible for the small
widths used in tests and demos), illustrating the §4.7 observation that
rank collapses to *small* values much faster than to exactly 1.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

import numpy as np

from repro.ltdp.problem import LTDPProblem
from repro.ltdp.sequential import forward_sequential
from repro.semiring.rank import factor_rank_upper_bound
from repro.semiring.tropical import tropical_matmat
from repro.semiring.vector import are_parallel, random_nonzero_vector

__all__ = [
    "ConvergenceStudy",
    "steps_to_parallel",
    "measure_convergence_steps",
    "partial_product_rank_profile",
]


@dataclass
class ConvergenceStudy:
    """Statistics of steps-to-convergence over many random restarts.

    ``steps`` holds one entry per trial: the number of stages after
    which the perturbed computation became parallel to the truth, or
    ``None`` when it never did before running out of stages (the
    paper's blank LCS entries).
    """

    problem_name: str
    width: int
    steps: list[int | None]

    @property
    def converged_steps(self) -> list[int]:
        return [s for s in self.steps if s is not None]

    @property
    def num_trials(self) -> int:
        return len(self.steps)

    @property
    def num_converged(self) -> int:
        return len(self.converged_steps)

    @property
    def convergence_fraction(self) -> float:
        return self.num_converged / self.num_trials if self.steps else 0.0

    def _stat(self, fn) -> int | None:
        xs = self.converged_steps
        return int(fn(xs)) if xs else None

    @property
    def min_steps(self) -> int | None:
        return self._stat(min)

    @property
    def median_steps(self) -> int | float | None:
        """True median (``statistics.median`` semantics): the mean of the
        two middle elements for even-length samples, not the upper one.
        Integral medians are returned as ``int`` to keep Table 1 rows tidy.
        """
        xs = self.converged_steps
        if not xs:
            return None
        med = statistics.median(xs)
        return int(med) if float(med).is_integer() else float(med)

    @property
    def max_steps(self) -> int | None:
        return self._stat(max)

    def row(self) -> tuple:
        """(name, width, min, median, max, converged/total) — a Table 1 row."""
        fmt = lambda v: "-" if v is None else v  # noqa: E731
        return (
            self.problem_name,
            self.width,
            fmt(self.min_steps),
            fmt(self.median_steps),
            fmt(self.max_steps),
            f"{self.num_converged}/{self.num_trials}",
        )


def steps_to_parallel(
    problem: LTDPProblem,
    reference: list[np.ndarray],
    start_stage: int,
    rng: np.random.Generator,
    *,
    max_steps: int | None = None,
    nz_low: float = -10.0,
    nz_high: float = 10.0,
    nz_integer: bool = True,
) -> int | None:
    """Steps from a random all-non-zero vector at ``start_stage`` until parallel.

    ``reference[i]`` must hold the true solution vector ``s_i``.
    Returns the smallest ``k ≥ 1`` with the perturbed vector at stage
    ``start_stage + k`` parallel to ``reference[start_stage + k]``, or
    ``None`` if that never happens within the available stages (or
    ``max_steps``).
    """
    n = problem.num_stages
    if not 0 <= start_stage < n:
        raise ValueError(f"start_stage must be in 0..{n - 1}")
    v = random_nonzero_vector(
        problem.stage_width(start_stage),
        rng,
        low=nz_low,
        high=nz_high,
        integer=nz_integer,
    )
    limit = n - start_stage if max_steps is None else min(max_steps, n - start_stage)
    tol = problem.parallel_tol
    for k in range(1, limit + 1):
        i = start_stage + k
        v = problem.apply_stage(i, v)
        if are_parallel(v, reference[i], tol=tol):
            return k
    return None


def measure_convergence_steps(
    problem: LTDPProblem,
    *,
    num_trials: int = 200,
    seed: int = 0,
    name: str | None = None,
    max_steps: int | None = None,
    start_stages: list[int] | None = None,
) -> ConvergenceStudy:
    """Run the Table 1 protocol on one LTDP instance.

    Start stages default to ``num_trials`` distinct positions spread
    uniformly over the first 2/3 of the stage sequence (leaving room to
    converge before the final stage, as a perturbation started near the
    end cannot converge and would bias the no-convergence count).
    """
    rng = np.random.default_rng(seed)
    n = problem.num_stages
    _, _, reference, _ = forward_sequential(problem, keep_stage_vectors=True)
    assert reference is not None
    if start_stages is None:
        hi = max(1, (2 * n) // 3)
        count = min(num_trials, hi)
        start_stages = sorted(
            int(s) for s in np.linspace(0, hi - 1, num=count).round()
        )
    steps = [
        steps_to_parallel(problem, reference, s, rng, max_steps=max_steps)
        for s in start_stages
    ]
    # Report the computation width (the Table 1 "Width" column) as the
    # widest stage — selector stages would otherwise misreport it as 1.
    width = problem.max_stage_width()
    return ConvergenceStudy(
        problem_name=name or type(problem).__name__,
        width=width,
        steps=steps,
    )


def partial_product_rank_profile(
    problem: LTDPProblem,
    start_stage: int,
    length: int,
    *,
    tol: float = 0.0,
) -> list[int]:
    """Upper bounds on ``rank(M_{start→start+k})`` for ``k = 1..length``.

    Materializes the partial products explicitly (O(width³) per step) —
    use on small-width instances.  The sequence is non-increasing up to
    bound slack, demonstrating paper Equation (3), and reaching 1 is
    *exact* (the bound is tight at rank 1).
    """
    n = problem.num_stages
    if not 0 <= start_stage < n:
        raise ValueError(f"start_stage must be in 0..{n - 1}")
    length = min(length, n - start_stage)
    profile: list[int] = []
    product: np.ndarray | None = None
    for k in range(1, length + 1):
        a = problem.stage_matrix(start_stage + k)
        product = a if product is None else tropical_matmat(a, product)
        profile.append(factor_rank_upper_bound(product, tol=tol))
    return profile
