"""The parallel LTDP algorithm — stable import point.

The implementation lives in :mod:`repro.ltdp.engine`, split into a
*plan* layer (declarative superstep specs for the forward pass, fix-up
loop, objective reduction and backward phases — paper Figures 4/5) and
a *runtime* layer (where the specs execute: serially, on threads, on
forked processes, or on a persistent worker pool with state-resident
workers).  This module re-exports the public entry points under their
historical names so ``from repro.ltdp.parallel import solve_parallel``
keeps working unchanged.

See :mod:`repro.ltdp.engine.driver` for the algorithm documentation.
"""

from __future__ import annotations

from repro.ltdp.engine.driver import (  # noqa: F401  (re-exports)
    ParallelOptions,
    _edge_weight,
    _price_path,
    edge_weight_by_probe,
    solve_parallel,
)

__all__ = ["ParallelOptions", "solve_parallel", "edge_weight_by_probe"]
