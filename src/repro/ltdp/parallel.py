"""The parallel LTDP algorithm — paper Figures 4 (forward) and 5 (backward).

Processors own contiguous stage ranges.  Processor 1 starts from the
true initial vector; every other processor starts from a random
**all-non-zero** vector (§4.5).  After a barrier, the fix-up loop
repeatedly re-executes each processor's range from the boundary vector
its left neighbour advertised, stopping early as soon as a recomputed
stage vector becomes *tropically parallel* to the stored one — rank
convergence (§4.2) makes that happen after a problem-dependent number
of stages, and Lemma 3 guarantees the stored suffix then yields the
same predecessors as the true computation.

The algorithm here is executed for real — every recomputed cell is a
genuine kernel invocation — and its per-processor work is recorded in
:class:`~repro.machine.metrics.RunMetrics` for the BSP cost model.
Any :class:`~repro.machine.executor.Executor` can run the supersteps:
results are bit-identical across serial / thread / process executors
because every superstep's cross-processor inputs are snapshotted first
(exactly what the paper's barriers guarantee).

An *exact-score epilogue* (ours, not in the paper) recovers the true
optimal value ``s_n[0]`` by pricing the traced path edge by edge: the
parallel forward phase only guarantees vectors parallel to the truth,
so the final vector's entries are offset by an unknown constant, but
path edge weights are offset-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConvergenceError, ProblemDefinitionError, ZeroVectorError
from repro.ltdp.delta import delta_fixup_work
from repro.ltdp.partition import StageRange, partition_stages
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.ltdp.sequential import solve_sequential
from repro.machine.executor import Executor, SerialExecutor
from repro.machine.metrics import CommEvent, RunMetrics, SuperstepRecord
from repro.semiring.tropical import NEG_INF
from repro.semiring.vector import are_parallel, is_zero_vector, random_nonzero_vector

__all__ = ["ParallelOptions", "solve_parallel", "edge_weight_by_probe"]


@dataclass
class ParallelOptions:
    """Knobs of the parallel solver.

    Attributes
    ----------
    num_procs:
        Requested processor count ``P`` (clamped to the stage count).
    executor:
        Where superstep tasks run; default serial (deterministic sim).
    seed:
        Seeds the random ``nz`` start vectors (Fig 4 line 8).  The same
        seed gives the same vectors regardless of executor.
    nz_low, nz_high:
        Range of the entries of the ``nz`` vectors.
    nz_integer:
        Draw integer ``nz`` entries (default) so that integer-scored
        problems stay bit-exact; set False for continuous entries.
    use_delta:
        Account fix-up work with the §4.7 delta-computation cost
        (changed adjacent differences + 1) instead of full stage cost.
        Results are unchanged; only the recorded work differs.
    max_fixup_iterations:
        Safety bound; default ``P + 1`` (the loop provably terminates
        within ``P`` iterations — worst case it devolves to sequential).
    exact_score:
        Run the path-pricing epilogue so ``solution.score`` equals the
        true ``s_n[0]`` (costs one ``edge_weight`` per stage).
    parallel_backward:
        Use the Fig 5 parallel backward phase; else traceback serially.
    keep_stage_vectors:
        Return the stored per-stage vectors (each parallel to the true
        one) on the solution object.
    """

    num_procs: int = 2
    executor: Executor = field(default_factory=SerialExecutor)
    seed: int | None = 0
    nz_low: float = -10.0
    nz_high: float = 10.0
    nz_integer: bool = True
    use_delta: bool = False
    max_fixup_iterations: int | None = None
    exact_score: bool = True
    parallel_backward: bool = True
    keep_stage_vectors: bool = False

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")
        if not self.nz_low < self.nz_high:
            raise ValueError("require nz_low < nz_high")


def edge_weight_by_probe(problem: LTDPProblem, i: int, j: int, k: int) -> float:
    """``A_i[j, k]`` recovered by applying stage ``i`` to the unit vector at ``k``.

    O(width) fallback used when a problem does not override
    ``edge_weight``; all shipped problems provide O(1) overrides.
    """
    w_in = problem.stage_width(i - 1)
    unit = np.full(w_in, NEG_INF)
    unit[k] = 0.0
    return float(problem.apply_stage(i, unit)[j])


def _edge_weight(problem: LTDPProblem, i: int, j: int, k: int) -> float:
    fn = getattr(problem, "edge_weight", None)
    if fn is not None:
        return float(fn(i, j, k))
    return edge_weight_by_probe(problem, i, j, k)


def _price_path(problem: LTDPProblem, path: np.ndarray) -> float:
    """Exact objective of a traced path: ``s_0[path[0]] + Σ_i A_i[path[i], path[i-1]]``."""
    s0 = problem.initial_vector()
    total = float(s0[path[0]])
    for i in range(1, problem.num_stages + 1):
        total += _edge_weight(problem, i, int(path[i]), int(path[i - 1]))
    return total


# ----------------------------------------------------------------------
# Forward phase (paper Figure 4)
# ----------------------------------------------------------------------


def _forward_initial_pass(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts: ParallelOptions,
    s_store: list[np.ndarray | None],
    pred_store: list[np.ndarray | None],
    metrics: RunMetrics,
) -> None:
    """Fig 4 lines 6-11: every processor sweeps its range from s0 / nz."""
    seed_seq = np.random.SeedSequence(opts.seed)
    child_seeds = seed_seq.spawn(len(ranges))

    def make_task(rg: StageRange, child: np.random.SeedSequence):
        def task():
            if rg.proc == 1:
                v = problem.initial_vector()
            else:
                rng = np.random.default_rng(child)
                v = random_nonzero_vector(
                    problem.stage_width(rg.lo),
                    rng,
                    low=opts.nz_low,
                    high=opts.nz_high,
                    integer=opts.nz_integer,
                )
            out_s: dict[int, np.ndarray] = {}
            out_pred: dict[int, np.ndarray] = {}
            work = 0.0
            for i in rg.stages():
                v, p = problem.apply_stage_with_pred(i, v)
                if is_zero_vector(v):
                    raise ZeroVectorError(
                        f"stage {i} produced an all--inf vector during the "
                        "parallel forward pass"
                    )
                out_s[i] = v
                out_pred[i] = p
                work += problem.stage_cost(i)
            return out_s, out_pred, work

        return task

    tasks = [make_task(rg, child) for rg, child in zip(ranges, child_seeds)]
    results = opts.executor.run_superstep(tasks)
    work_row = []
    for (out_s, out_pred, work), _rg in zip(results, ranges):
        for i, v in out_s.items():
            s_store[i] = v
        for i, p in out_pred.items():
            pred_store[i] = p
        work_row.append(work)
    metrics.record(SuperstepRecord(label="forward", work=work_row))


def _forward_fixup(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts: ParallelOptions,
    s_store: list[np.ndarray | None],
    pred_store: list[np.ndarray | None],
    metrics: RunMetrics,
) -> None:
    """Fig 4 lines 13-27: iterate until every processor observes parallelism."""
    num_procs = len(ranges)
    if num_procs == 1:
        return
    max_iters = (
        opts.max_fixup_iterations
        if opts.max_fixup_iterations is not None
        else num_procs + 1
    )
    tol = problem.parallel_tol
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iters:
            raise ConvergenceError(
                f"forward fix-up did not converge within {max_iters} iterations"
            )
        # Barrier semantics: every processor reads its left neighbour's
        # final stage vector as stored at the *start* of the iteration.
        boundaries = {rg.proc: np.array(s_store[rg.lo], copy=True) for rg in ranges[1:]}
        comm = [
            CommEvent(src=rg.proc - 1, dst=rg.proc, num_bytes=8 * boundaries[rg.proc].size)
            for rg in ranges[1:]
        ]

        def make_task(rg: StageRange):
            stored = {i: s_store[i] for i in rg.stages()}

            def task():
                v = boundaries[rg.proc]
                new_s: dict[int, np.ndarray] = {}
                new_pred: dict[int, np.ndarray] = {}
                work = 0.0
                stages_done = 0
                converged = False
                for i in rg.stages():
                    v, p = problem.apply_stage_with_pred(i, v)
                    if is_zero_vector(v):
                        raise ZeroVectorError(
                            f"stage {i} produced an all--inf vector in fix-up"
                        )
                    new_pred[i] = p
                    old = stored[i]
                    if opts.use_delta:
                        work += delta_fixup_work(old, v)
                    else:
                        work += problem.stage_cost(i)
                    stages_done += 1
                    if are_parallel(v, old, tol=tol):
                        converged = True
                        break
                    new_s[i] = v
                return new_s, new_pred, work, stages_done, converged

            return task

        tasks = [make_task(rg) for rg in ranges[1:]]
        results = opts.executor.run_superstep(tasks)
        work_row = [0.0] * num_procs  # processor 1 idles in fix-up
        all_conv = True
        for (new_s, new_pred, work, stages_done, converged), rg in zip(
            results, ranges[1:]
        ):
            for i, v in new_s.items():
                s_store[i] = v
            for i, p in new_pred.items():
                pred_store[i] = p
            work_row[rg.proc - 1] = work
            metrics.fixup_stages[rg.proc] = (
                metrics.fixup_stages.get(rg.proc, 0) + stages_done
            )
            all_conv &= converged
        metrics.record(
            SuperstepRecord(label=f"fixup[{iteration}]", work=work_row, comm=comm)
        )
        if all_conv:
            break
    metrics.forward_fixup_iterations = iteration
    metrics.converged_first_iteration = iteration == 1


# ----------------------------------------------------------------------
# Backward phase (paper Figure 5)
# ----------------------------------------------------------------------


def _objective_reduction(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts: ParallelOptions,
    s_store: list[np.ndarray | None],
    metrics: RunMetrics,
) -> tuple[float, int, int]:
    """Reduce the shift-invariant per-stage objective across processors.

    One extra superstep: each processor scans its own stored stage
    vectors (processor 1 also covers stage 0); the global reduction
    breaks ties toward the earliest stage — the same deterministic rule
    the sequential solver uses.
    """

    def make_task(rg: StageRange):
        def task():
            best = None
            start = 0 if rg.proc == 1 else rg.lo + 1
            for i in range(start, rg.hi + 1):
                val, cell = problem.stage_objective(i, np.asarray(s_store[i]))
                if best is None or val > best[0]:
                    best = (val, i, cell)
            work = float(
                sum(problem.stage_objective_cost(i) for i in range(start, rg.hi + 1))
            )
            return best, work

        return task

    results = opts.executor.run_superstep([make_task(rg) for rg in ranges])
    metrics.record(
        SuperstepRecord(label="objective", work=[w for _, w in results])
    )
    best_val, best_stage, best_cell = None, 0, 0
    for (candidate, _w) in results:
        if candidate is None:
            continue
        val, stage, cell = candidate
        if best_val is None or val > best_val or (val == best_val and stage < best_stage):
            best_val, best_stage, best_cell = val, stage, cell
    assert best_val is not None
    return best_val, best_stage, best_cell


def _backward_parallel(
    problem: LTDPProblem,
    ranges: Sequence[StageRange],
    opts: ParallelOptions,
    pred_store: list[np.ndarray | None],
    metrics: RunMetrics,
    *,
    start_stage: int | None = None,
    start_cell: int = 0,
) -> np.ndarray:
    """Fig 5: parallel predecessor traversal with its own fix-up loop.

    ``path[i]`` = optimal subproblem index at stage ``i``.  Every
    processor starts its traversal assuming index 0 at its right
    boundary (Fig 5 line 8); the last processor's assumption is exact
    by the solution convention (or it starts from the objective cell
    for stage-objective problems).  Fix-up re-traverses from the right
    neighbour's corrected boundary until an entry matches (Lemma 5
    ensures this happens once the backward partial products reach
    rank 1).
    """
    n = problem.num_stages
    total_procs = len(ranges)
    if start_stage is None:
        start_stage = n
    path = np.zeros(n + 1, dtype=np.int64)
    path[start_stage] = start_cell
    if start_stage == 0:
        return path
    # The traceback only covers stages 1..start_stage; repartition them
    # over the same processor pool (idle processors contribute 0 work).
    ranges = partition_stages(start_stage, total_procs)
    num_procs = len(ranges)

    def pad(work_rows: list[float]) -> list[float]:
        return work_rows + [0.0] * (total_procs - len(work_rows))

    def make_initial(rg: StageRange):
        def task():
            x = start_cell if rg.proc == num_procs else 0
            out: dict[int, int] = {}
            for i in range(rg.hi, rg.lo, -1):
                x = int(pred_store[i][x])
                out[i - 1] = x
            return out

        return task

    results = opts.executor.run_superstep([make_initial(rg) for rg in ranges])
    for out in results:
        for idx, val in out.items():
            path[idx] = val
    metrics.record(
        SuperstepRecord(
            label="backward", work=pad([float(rg.num_stages) for rg in ranges])
        )
    )

    if num_procs == 1:
        return path

    max_iters = (
        opts.max_fixup_iterations
        if opts.max_fixup_iterations is not None
        else num_procs + 1
    )
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iters:
            raise ConvergenceError(
                f"backward fix-up did not converge within {max_iters} iterations"
            )
        # Processors 1..P-1 re-traverse from the boundary index owned by
        # their right neighbour's region (snapshot = barrier semantics).
        boundaries = {rg.proc: int(path[rg.hi]) for rg in ranges[:-1]}
        comm = [
            CommEvent(src=rg.proc + 1, dst=rg.proc, num_bytes=8)
            for rg in ranges[:-1]
        ]

        def make_fixup(rg: StageRange):
            snapshot = {i - 1: int(path[i - 1]) for i in range(rg.hi, rg.lo, -1)}

            def task():
                x = boundaries[rg.proc]
                updates: dict[int, int] = {}
                work = 0.0
                converged = False
                for i in range(rg.hi, rg.lo, -1):
                    x = int(pred_store[i][x])
                    work += 1.0
                    if snapshot[i - 1] == x:
                        converged = True
                        break
                    updates[i - 1] = x
                return updates, work, converged

            return task

        tasks = [make_fixup(rg) for rg in ranges[:-1]]
        results = opts.executor.run_superstep(tasks)
        work_row = [0.0] * total_procs  # the last processor idles
        all_conv = True
        for (updates, work, converged), rg in zip(results, ranges[:-1]):
            for idx, val in updates.items():
                path[idx] = val
            work_row[rg.proc - 1] = work
            all_conv &= converged
        metrics.record(
            SuperstepRecord(label=f"bwd-fixup[{iteration}]", work=work_row, comm=comm)
        )
        if all_conv:
            break
    metrics.backward_fixup_iterations = iteration
    return path


def _backward_serial(
    problem: LTDPProblem,
    pred_store: list[np.ndarray | None],
    metrics: RunMetrics,
    num_procs: int,
    *,
    start_stage: int | None = None,
    start_cell: int = 0,
) -> np.ndarray:
    """Sequential traceback (Fig 2 backward) recorded as processor-1 work."""
    n = problem.num_stages
    if start_stage is None:
        start_stage = n
    path = np.zeros(n + 1, dtype=np.int64)
    path[start_stage] = start_cell
    x = start_cell
    for i in range(start_stage, 0, -1):
        x = int(pred_store[i][x])
        path[i - 1] = x
    work_row = [0.0] * num_procs
    work_row[0] = float(start_stage)
    metrics.record(SuperstepRecord(label="backward", work=work_row))
    return path


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def solve_parallel(
    problem: LTDPProblem,
    options: ParallelOptions | None = None,
    **kwargs,
) -> LTDPSolution:
    """Solve an LTDP instance with the paper's parallel algorithm.

    ``kwargs`` are convenience overrides for :class:`ParallelOptions`
    fields, e.g. ``solve_parallel(prob, num_procs=8, seed=42)``.

    Returns an :class:`LTDPSolution` whose ``path`` is identical to the
    sequential algorithm's (deterministic tie-breaking makes this an
    equality, not just co-optimality) and whose ``metrics`` record the
    real per-processor work for the cost model.
    """
    if options is None:
        options = ParallelOptions(**kwargs)
    elif kwargs:
        raise TypeError("pass either a ParallelOptions object or keyword overrides")

    n = problem.num_stages
    if n < 1:
        raise ProblemDefinitionError("problem must have at least one stage")

    ranges = partition_stages(n, options.num_procs)
    num_procs = len(ranges)
    if num_procs == 1:
        solution = solve_sequential(
            problem,
            keep_stage_vectors=options.keep_stage_vectors,
            with_metrics=True,
        )
        return solution

    metrics = RunMetrics(
        num_procs=num_procs,
        num_stages=n,
        stage_width=problem.stage_width(n),
    )
    s_store: list[np.ndarray | None] = [None] * (n + 1)
    s_store[0] = problem.initial_vector()
    pred_store: list[np.ndarray | None] = [None] * (n + 1)

    _forward_initial_pass(problem, ranges, options, s_store, pred_store, metrics)
    _forward_fixup(problem, ranges, options, s_store, pred_store, metrics)

    obj_stage: int | None = None
    obj_cell: int | None = None
    obj_value: float | None = None
    if problem.tracks_stage_objective:
        obj_value, obj_stage, obj_cell = _objective_reduction(
            problem, ranges, options, s_store, metrics
        )

    if options.parallel_backward:
        path = _backward_parallel(
            problem,
            ranges,
            options,
            pred_store,
            metrics,
            start_stage=obj_stage,
            start_cell=obj_cell or 0,
        )
    else:
        path = _backward_serial(
            problem,
            pred_store,
            metrics,
            num_procs,
            start_stage=obj_stage,
            start_cell=obj_cell or 0,
        )

    final = np.asarray(s_store[n])
    if obj_value is not None:
        # The shift-invariant objective is exact even on offset vectors.
        score = float(obj_value)
    elif options.exact_score:
        score = _price_path(problem, path)
    else:
        score = float(final[0])

    return LTDPSolution(
        path=path,
        score=score,
        final_vector=final,
        metrics=metrics,
        stage_vectors=(
            [np.asarray(v) for v in s_store] if options.keep_stage_vectors else None
        ),
        objective_stage=obj_stage,
        objective_cell=obj_cell,
    )
