"""The LTDP problem abstraction.

A problem presents its recurrence as a sequence of *stage operators*:
``apply_stage(i, v)`` computes ``A_i ⨂ v`` and
``apply_stage_with_pred(i, v)`` additionally returns the predecessor
product ``A_i ⋆ v``.  Problems are free to implement these with
specialized vectorized kernels (banded shifts, trellis butterflies,
striped scans) — the paper's point that "an implementation does not
need to represent the solutions in a stage as a vector and perform
matrix-vector operations" (§3).  The operator must nevertheless *be*
tropically linear; :mod:`repro.ltdp.validation` can check that, and
:meth:`LTDPProblem.stage_matrix` recovers the explicit ``A_i`` by
probing the kernel with tropical unit vectors.

Solution convention (paper Fig 2): the answer to the optimization
problem is the value of **subproblem 0 of the last stage**.  Problems
whose natural answer lives elsewhere append an extra stage that moves
it there (Viterbi's all-zero final matrix, Smith-Waterman's running
maximum; see §5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.machine.metrics import RunMetrics
from repro.semiring.tropical import NEG_INF, matvec_with_pred, tropical_matvec

__all__ = ["LTDPProblem", "LTDPSolution"]


class LTDPProblem(ABC):
    """A linear-tropical dynamic program with ``num_stages`` stages.

    Stage indices: ``0`` is the base case (``initial_vector``);
    ``1 .. num_stages`` are computed stages.  ``stage_width(i)`` is the
    length of the solution vector at stage ``i``; widths may vary
    between stages (the transformation matrices are then rectangular).
    """

    #: Absolute tolerance used by tropical-parallelism tests on this
    #: problem's vectors.  0.0 is exact and correct for integer-scored
    #: problems; floating-point log-prob problems should set ~1e-9.
    parallel_tol: float = 0.0

    #: Problems whose answer is the best subproblem over *all* stages
    #: (Smith–Waterman's "maximum of all subproblems in all stages", §5)
    #: set this and implement :meth:`stage_objective`.  Carrying a
    #: running-maximum cell inside the stage vector would make rank
    #: convergence impossible once the global optimum lies in an earlier
    #: processor's range (the accumulator never refreshes, so vectors
    #: never become parallel); instead the solvers evaluate a
    #: *shift-invariant* per-stage objective and reduce it across stages
    #: — exactly what an implementation reusing Farrar's kernel as a
    #: black box does.
    tracks_stage_objective: bool = False

    # -- shape ----------------------------------------------------------
    @property
    @abstractmethod
    def num_stages(self) -> int:
        """Number of computed stages ``n`` (≥ 1)."""

    @abstractmethod
    def stage_width(self, i: int) -> int:
        """Length of the solution vector at stage ``i`` (``0 ≤ i ≤ n``)."""

    def max_stage_width(self) -> int:
        """Widest ``stage_width(i)`` over stages ``0 .. n`` (cached).

        Solvers record this once per solve (the Table 1 "Width"
        convention); the naive per-solve scan is an O(n) Python loop
        that lands on the driver's critical path, so the first scan is
        memoized — the problem shape is immutable by contract.
        """
        cached = self.__dict__.get("_max_stage_width")
        if cached is None:
            cached = max(self.stage_width(i) for i in range(self.num_stages + 1))
            object.__setattr__(self, "_max_stage_width", cached)
        return cached

    # -- recurrence ------------------------------------------------------
    @abstractmethod
    def initial_vector(self) -> np.ndarray:
        """The base-case solution vector ``s_0``."""

    @abstractmethod
    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        """``A_i ⨂ v`` for ``1 ≤ i ≤ n``; must be tropically linear in ``v``."""

    def apply_stage_with_pred(
        self, i: int, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(A_i ⨂ v, A_i ⋆ v)``.

        Default falls back to probing the explicit matrix; problems
        with fast kernels should override with a fused implementation.
        """
        return matvec_with_pred(self.stage_matrix(i), v)

    # -- sparse delta fix-up (§4.7) ---------------------------------------
    #: Problems with a real sparse fix-up kernel (LCS / Needleman–Wunsch)
    #: set this True.  The kernel must be *bit-identical* to the dense
    #: one, so implementations only advertise support when every float64
    #: operation they reorder is exact — in practice, when all scores and
    #: base-case values are integral.
    supports_sparse_fixup: bool = False

    def apply_stage_with_state(
        self, i: int, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, Any]:
        """Dense ``apply_stage_with_pred`` that also returns an opaque
        evaluation-state cache for :meth:`apply_stage_sparse`.

        The state captures whatever intermediates the sparse kernel
        needs to repair a later evaluation of the same stage from a
        slightly different input (the §4.7 resident delta state).  The
        default returns ``None`` state — no sparse repair possible.
        """
        out, pred = self.apply_stage_with_pred(i, v)
        return out, pred, None

    def apply_stage_sparse(
        self, i: int, v: np.ndarray, state: Any, crossover: float
    ) -> tuple[np.ndarray, np.ndarray, Any, float] | None:
        """Sparse re-evaluation of stage ``i`` at input ``v``.

        ``state`` is the cache returned by the stage's previous
        evaluation (:meth:`apply_stage_with_state` or a previous sparse
        call).  Returns ``(out, pred, new_state, cells_touched)`` with
        ``out``/``pred`` bit-identical to ``apply_stage_with_pred(i, v)``,
        or ``None`` to request the dense kernel (no usable state, or the
        changed-input fraction exceeds ``crossover``).  The default has
        no sparse kernel and always returns ``None``.
        """
        return None

    # -- near-duplicate detection (serving layer) --------------------------
    def dirty_stages_against(self, base: "LTDPProblem") -> "set[int] | None":
        """Stages whose transforms differ from ``base``'s, or ``None``.

        The serving layer (:mod:`repro.serve`) uses this to answer a
        near-duplicate request by *repairing* a resident solve of
        ``base`` instead of solving from scratch: when this returns a
        set ``D``, the contract is that for every stage ``i ∉ D``
        (``1 ≤ i ≤ num_stages``) ``apply_stage``/``apply_stage_with_pred``
        of ``self`` and ``base`` are **bit-identical functions**, and the
        base cases (``initial_vector``) are bit-identical too.  ``None``
        means "cannot prove a bounded diff" and forces a fresh solve —
        the safe default, returned here.
        """
        return None

    # -- costs ------------------------------------------------------------
    def stage_cost(self, i: int) -> float:
        """DP cells computed by one application of stage ``i`` (cost-model units).

        Defaults to the output width; problems with denser kernels
        (e.g. dense Viterbi mat-vec: width²) should override so the
        simulated clock reflects real per-stage work.
        """
        return float(self.stage_width(i))

    def total_cells(self) -> float:
        """Total forward-phase work of the sequential algorithm."""
        return float(sum(self.stage_cost(i) for i in range(1, self.num_stages + 1)))

    # -- explicit matrices -------------------------------------------------
    def stage_matrix(self, i: int) -> np.ndarray:
        """The explicit transformation matrix ``A_i`` (probed from the kernel).

        ``A_i[:, k] = apply_stage(i, e_k)`` with ``e_k`` the tropical
        unit vector (0̄ everywhere except 1̄ = 0 at ``k``) — exact for
        any genuinely linear kernel.  O(width²); intended for analysis
        and tests, not hot paths.
        """
        w_in = self.stage_width(i - 1)
        w_out = self.stage_width(i)
        A = np.empty((w_out, w_in), dtype=np.float64)
        for k in range(w_in):
            unit = np.full(w_in, NEG_INF)
            unit[k] = 0.0
            col = self.apply_stage(i, unit)
            if col.shape != (w_out,):
                raise ProblemDefinitionError(
                    f"stage {i} kernel returned shape {col.shape}, "
                    f"expected ({w_out},)"
                )
            A[:, k] = col
        return A

    # -- stage objective (running-maximum problems) -------------------------
    def stage_objective_cost(self, i: int) -> float:
        """Cells charged for evaluating :meth:`stage_objective` at stage ``i``.

        Defaults to the stage width (one reduction pass).  Problems
        whose stage kernel already folds the reduction into
        :meth:`stage_cost` — as Farrar's kernel tracks the column max
        inside the sweep — should return 0 to avoid double charging.
        """
        return float(self.stage_width(i))

    def stage_objective(self, i: int, vector: np.ndarray) -> tuple[float, int]:
        """``(value, cell)`` of this stage's contribution to the answer.

        Only meaningful when ``tracks_stage_objective``.  Must be
        **shift-invariant**: adding a constant to ``vector`` may not
        change the value or the cell, because parallel runs only
        guarantee stage vectors up to a tropical scalar.
        """
        raise NotImplementedError(
            "stage_objective is only defined for tracks_stage_objective problems"
        )

    # -- solution decoding --------------------------------------------------
    def extract(self, solution: "LTDPSolution") -> Any:
        """Decode the stage-level path into the problem's natural answer.

        Default returns the solution unchanged; e.g. alignment problems
        override to reconstruct the aligned strings and the Viterbi
        decoder to emit the decoded bit-stream.
        """
        return solution

    # -- conveniences ----------------------------------------------------
    def check_stage_index(self, i: int) -> None:
        if not 1 <= i <= self.num_stages:
            raise ProblemDefinitionError(
                f"stage index {i} out of range 1..{self.num_stages}"
            )

    def reference_apply(self, i: int, v: np.ndarray) -> np.ndarray:
        """Slow reference: explicit mat-vec via the probed matrix (for tests)."""
        return tropical_matvec(self.stage_matrix(i), v)


@dataclass
class LTDPSolution:
    """Result of an LTDP solve.

    Attributes
    ----------
    path:
        ``path[i]`` = index of the optimal subproblem at stage ``i``,
        for ``0 ≤ i ≤ n`` (``path[n] == 0`` by the solution convention).
        Equivalent to the paper's ``res`` with ``res[i] = path[i-1]``.
    score:
        ``s_n[0]`` — the optimal objective value.
    final_vector:
        The solution vector at the last stage.  For parallel runs this
        is guaranteed only *parallel* to the true ``s_n`` except that
        processor-1-owned suffixes are exact; ``score`` is always taken
        from an exact run context (see solver docs).
    metrics:
        Work accounting when solved on a cluster, else ``None``.
    stage_vectors:
        All stage vectors when the solver was asked to keep them.
    objective_stage, objective_cell:
        For ``tracks_stage_objective`` problems: where the global
        optimum was found (the traceback starts there; ``path`` entries
        beyond ``objective_stage`` are 0 and meaningless).
    """

    path: np.ndarray
    score: float
    final_vector: np.ndarray
    metrics: RunMetrics | None = None
    stage_vectors: list[np.ndarray] | None = field(default=None, repr=False)
    objective_stage: int | None = None
    objective_cell: int | None = None

    def __post_init__(self) -> None:
        self.path = np.asarray(self.path, dtype=np.int64)
