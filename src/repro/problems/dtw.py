"""Dynamic time warping as LTDP (named as an instance in paper §5).

DTW aligns two real-valued time series ``x`` (rows) and ``y``
(columns), minimizing the total per-cell cost ``c[i, j] = |x_i - y_j|``
over monotone warping paths:

``D[i, j] = c[i, j] + min( D[i-1, j-1], D[i-1, j], D[i, j-1] )``.

Negating turns min-plus into max-plus: ``V = -D`` satisfies
``V[i, j] = -c[i, j] + max(V[i-1, j-1], V[i-1, j], V[i, j-1])`` — a
banded row-stage LTDP like Needleman–Wunsch, except the horizontal
"gap" penalty varies per cell.  The within-row closure is therefore a
prefix-sum-decayed cummax:
``V[i, j] = max_{e <= j} ( entry(e) - (S_j - S_e) )`` with
``S`` the prefix sums of the row's cell costs.

Column 0 is unreachable for every row ``i >= 1`` (``D[i, 0] = ∞``);
those would be *trivial subproblems* (§4.5), so the band simply
excludes them — rows ``i >= 1`` cover columns
``[max(1, i-w), min(m, i+w)]``.

``solution.score`` is ``-DTW distance``; :meth:`extract` returns the
warping path as (i, j) pairs (with within-row runs collapsed to the
entry cell, matching the stage-level path granularity).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.semiring.tropical import NEG_INF

__all__ = ["DTWProblem", "dtw_distance_reference"]


def dtw_distance_reference(x: np.ndarray, y: np.ndarray) -> float:
    """O(nm) reference DTW distance (no band) for tests."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n, m = len(x), len(y)
    D = np.full((n + 1, m + 1), np.inf)
    D[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            c = abs(x[i - 1] - y[j - 1])
            D[i, j] = c + min(D[i - 1, j - 1], D[i - 1, j], D[i, j - 1])
    return float(D[n, m])


class DTWProblem(LTDPProblem):
    """Banded DTW between two 1-D series; ``width`` is the Sakoe–Chiba radius."""

    # Continuous costs: offsets under recomputation carry ±ulp noise.
    parallel_tol = 1e-9

    def __init__(self, x: np.ndarray, y: np.ndarray, *, width: int) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 1 or y.ndim != 1 or not x.size or not y.size:
            raise ProblemDefinitionError("series must be non-empty 1-D arrays")
        if width < 1:
            raise ProblemDefinitionError("band width must be >= 1")
        if abs(len(x) - len(y)) > width:
            raise ProblemDefinitionError("band excludes the endpoint; widen it")
        self.x = x
        self.y = y
        self.width = width
        self._n = len(x)
        self._m = len(y)

    # ------------------------------------------------------------------
    def _bounds(self, i: int) -> tuple[int, int]:
        """Band columns of row ``i``; rows >= 1 exclude the dead column 0."""
        if i == 0:
            return 0, min(self._m, self.width)
        return max(1, i - self.width), min(self._m, i + self.width)

    @property
    def num_stages(self) -> int:
        return self._n + 1  # rows 1..n + selector

    def stage_width(self, i: int) -> int:
        if not 0 <= i <= self.num_stages:
            raise ProblemDefinitionError(f"stage {i} out of range")
        if i == self.num_stages:
            return 1
        lo, hi = self._bounds(i)
        return hi - lo + 1

    def initial_vector(self) -> np.ndarray:
        lo, hi = self._bounds(0)
        v = np.full(hi - lo + 1, NEG_INF)
        v[0] = 0.0  # V[0, 0] = 0; warping must start at the origin
        return v

    def _selector_source(self) -> int:
        lo, _ = self._bounds(self._n)
        return self._m - lo

    def _kernel(self, i: int, v: np.ndarray, *, want_pred: bool):
        lo_p, hi_p = self._bounds(i - 1)
        lo, hi = self._bounds(i)
        W = hi - lo + 1
        if v.shape != (hi_p - lo_p + 1,):
            raise ProblemDefinitionError(
                f"stage {i} input has shape {v.shape}, expected ({hi_p - lo_p + 1},)"
            )
        entry = np.full(W, NEG_INF)
        epred = np.zeros(W, dtype=np.int64)
        # Up moves (same column).
        s, e = max(lo, lo_p), min(hi, hi_p)
        if s <= e:
            sl = slice(s - lo, e - lo + 1)
            entry[sl] = v[s - lo_p : e - lo_p + 1]
            epred[sl] = np.arange(s - lo_p, e - lo_p + 1)
        # Diagonal moves (previous column); tie -> diagonal (lower index).
        ds, de = max(lo, lo_p + 1), min(hi, hi_p + 1)
        if ds <= de:
            sl = slice(ds - lo, de - lo + 1)
            diag = v[ds - 1 - lo_p : de - lo_p]
            better = diag >= entry[sl]
            entry[sl] = np.where(better, diag, entry[sl])
            epred[sl] = np.where(
                better, np.arange(ds - 1 - lo_p, de - lo_p), epred[sl]
            )
        costs = np.abs(self.x[i - 1] - self.y[lo - 1 : hi])
        with np.errstate(invalid="ignore"):
            entry = entry - costs  # entering cell (i, j) always pays c[i, j]
            S = np.cumsum(costs)
            t = entry + S
            cm = np.maximum.accumulate(t)
            vals = cm - S
        if not want_pred:
            return vals
        newmax = np.empty(W, dtype=bool)
        newmax[0] = True
        newmax[1:] = t[1:] > cm[:-1]
        estar = np.maximum.accumulate(np.where(newmax, np.arange(W), -1))
        return vals, epred[estar]

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            return np.array([v[self._selector_source()]])
        return self._kernel(i, v, want_pred=False)

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            k = self._selector_source()
            return np.array([v[k]]), np.array([k], dtype=np.int64)
        return self._kernel(i, v, want_pred=True)

    def edge_weight(self, i: int, j: int, k: int) -> float:
        self.check_stage_index(i)
        if i == self.num_stages:
            return 0.0 if k == self._selector_source() else NEG_INF
        lo_p, hi_p = self._bounds(i - 1)
        lo, hi = self._bounds(i)
        if not (0 <= k <= hi_p - lo_p and 0 <= j <= hi - lo):
            return NEG_INF
        c_in, c_out = lo_p + k, lo + j
        best = NEG_INF
        for e in (c_in + 1, c_in):  # diagonal entry, then vertical entry
            if e > c_out or e < lo:
                continue
            cost = sum(
                abs(self.x[i - 1] - self.y[f - 1]) for f in range(e, c_out + 1)
            )
            best = max(best, -cost)
        return best

    # ------------------------------------------------------------------
    def extract(self, solution: LTDPSolution) -> list[tuple[int, int]]:
        """The warping path as (row, column) pairs, one per row."""
        out = []
        for i in range(1, self._n + 1):
            lo, _ = self._bounds(i)
            out.append((i, lo + int(solution.path[i])))
        return out
