"""The LTDP problem zoo.

Paper §5 instances:

- :mod:`repro.problems.convolutional` — convolutional codes and the
  Viterbi decoder (the paper's headline benchmark);
- :mod:`repro.problems.hmm` — discrete HMMs and Viterbi inference;
- :mod:`repro.problems.alignment` — LCS, Needleman–Wunsch and
  Smith–Waterman with their SIMD-style baselines;

plus the problems §5 names but does not evaluate:

- :mod:`repro.problems.dtw` — dynamic time warping;
- :mod:`repro.problems.seam` — seam carving.
"""

from repro.problems.convolutional import (
    ConvolutionalCode,
    ViterbiDecoderProblem,
    VOYAGER,
    CDMA_IS95,
    LTE,
    MARS,
    STANDARD_CODES,
)
from repro.problems.hmm import DiscreteHMM, HMMViterbiProblem
from repro.problems.alignment import (
    LCSProblem,
    NeedlemanWunschProblem,
    SmithWatermanProblem,
    ScoringScheme,
)
from repro.problems.dtw import DTWProblem
from repro.problems.seam import SeamCarvingProblem

__all__ = [
    "ConvolutionalCode",
    "ViterbiDecoderProblem",
    "VOYAGER",
    "CDMA_IS95",
    "LTE",
    "MARS",
    "STANDARD_CODES",
    "DiscreteHMM",
    "HMMViterbiProblem",
    "LCSProblem",
    "NeedlemanWunschProblem",
    "SmithWatermanProblem",
    "ScoringScheme",
    "DTWProblem",
    "SeamCarvingProblem",
]
