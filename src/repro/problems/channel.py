"""Channel models for the Viterbi benchmarks: BPSK over AWGN, LLRs.

The paper decodes packets "transmitted over noisy and unreliable
channels".  Hard-decision decoding (binary symmetric channel) lives in
:mod:`repro.datagen.packets`; this module adds the soft-decision path
real receivers use:

- BPSK modulation (bit ``b`` → symbol ``1 - 2b``),
- additive white Gaussian noise at a given Eb/N0,
- quantized log-likelihood ratios (integer LLRs keep the tropical
  arithmetic exact, mirroring the fixed-point metrics of hardware and
  SIMD decoders).

Soft metrics plug into
:class:`repro.problems.convolutional.SoftViterbiDecoderProblem`, whose
branch metric is the LLR correlation ``Σ_j (1 - 2·out_j) · llr_j`` —
still an instance of LTDP Equation (1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bpsk_modulate",
    "awgn_channel",
    "hard_decision",
    "quantize_llr",
    "ebn0_to_noise_sigma",
]


def bpsk_modulate(bits: np.ndarray) -> np.ndarray:
    """Map bits to antipodal symbols: 0 → +1.0, 1 → -1.0."""
    bits = np.asarray(bits, dtype=np.uint8)
    if np.any(bits > 1):
        raise ValueError("bits must be 0/1")
    return 1.0 - 2.0 * bits.astype(np.float64)


def ebn0_to_noise_sigma(ebn0_db: float, code_rate: float) -> float:
    """Noise standard deviation per BPSK symbol at the given Eb/N0.

    ``Es/N0 = Eb/N0 · rate``; with unit symbol energy,
    ``sigma² = 1 / (2 · Es/N0)``.
    """
    if not 0.0 < code_rate <= 1.0:
        raise ValueError("code rate must be in (0, 1]")
    esn0 = 10.0 ** (ebn0_db / 10.0) * code_rate
    return float(1.0 / np.sqrt(2.0 * esn0))


def awgn_channel(
    symbols: np.ndarray, rng: np.random.Generator, *, sigma: float
) -> np.ndarray:
    """Add white Gaussian noise of the given standard deviation."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    symbols = np.asarray(symbols, dtype=np.float64)
    return symbols + rng.normal(0.0, sigma, size=symbols.shape)


def hard_decision(received: np.ndarray) -> np.ndarray:
    """Threshold noisy BPSK symbols back to bits (0 ↔ positive)."""
    return (np.asarray(received, dtype=np.float64) < 0.0).astype(np.uint8)


def quantize_llr(
    received: np.ndarray, *, sigma: float, num_bits: int = 4
) -> np.ndarray:
    """Integer log-likelihood ratios from noisy BPSK symbols.

    ``LLR = 2·y/sigma²`` scaled and clipped to a signed ``num_bits``
    fixed-point range — the quantization real SIMD/hardware decoders
    apply.  Integer outputs keep all downstream tropical arithmetic
    exact in float64.
    """
    if num_bits < 2 or num_bits > 16:
        raise ValueError("num_bits must be in 2..16")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    received = np.asarray(received, dtype=np.float64)
    llr = 2.0 * received / (sigma * sigma)
    limit = 2 ** (num_bits - 1) - 1
    # Scale so that a clean symbol (|y| = 1) lands mid-range.
    scale = limit / (2.0 / (sigma * sigma)) * 2.0
    q = np.clip(np.round(llr * scale), -limit, limit)
    return q.astype(np.int64)
