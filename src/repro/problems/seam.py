"""Seam carving as LTDP (named as an instance in paper §5).

Content-aware image resizing removes the connected vertical path
(seam) of minimum total energy.  With ``V = -cumulative energy``:

``V[i, j] = -E[i, j] + max( V[i-1, j-1], V[i-1, j], V[i-1, j+1] )``

— stage ``i`` is image row ``i``, the stage vector is the whole row,
and the transform is three shifted copies of the previous row (a
banded tropical matrix of bandwidth 1).  No within-row dependence, so
the kernel is a plain shifted-max.  A final width-1 max-selection
stage moves the best seam end into the Fig-2 answer slot.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.semiring.tropical import NEG_INF

__all__ = ["SeamCarvingProblem", "seam_energy_reference", "gradient_energy"]


def gradient_energy(image: np.ndarray) -> np.ndarray:
    """Simple L1 gradient-magnitude energy of a grayscale image."""
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("image must be 2-D grayscale")
    gx = np.abs(np.diff(img, axis=1, prepend=img[:, :1]))
    gy = np.abs(np.diff(img, axis=0, prepend=img[:1, :]))
    return gx + gy


def seam_energy_reference(energy: np.ndarray) -> float:
    """Minimum vertical-seam energy by the classic row-sweep DP (for tests)."""
    E = np.asarray(energy, dtype=np.float64)
    acc = E[0].copy()
    for i in range(1, E.shape[0]):
        left = np.concatenate(([np.inf], acc[:-1]))
        right = np.concatenate((acc[1:], [np.inf]))
        acc = E[i] + np.minimum(np.minimum(left, acc), right)
    return float(acc.min())


class SeamCarvingProblem(LTDPProblem):
    """Minimum-energy vertical seam of an energy map, as LTDP.

    ``solution.score == -(minimum seam energy)``; :meth:`extract`
    returns the seam's column index per row.
    """

    # Continuous energies: offsets under recomputation carry ±ulp noise.
    parallel_tol = 1e-9

    def __init__(self, energy: np.ndarray) -> None:
        E = np.asarray(energy, dtype=np.float64)
        if E.ndim != 2 or E.shape[0] < 1 or E.shape[1] < 1:
            raise ProblemDefinitionError("energy must be a non-empty 2-D array")
        if not np.isfinite(E).all():
            raise ProblemDefinitionError("energy values must be finite")
        self.energy = E
        self._rows, self._cols = E.shape

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return self._rows  # rows 2..R are stages 1..R-1; stage R = selector

    def stage_width(self, i: int) -> int:
        if not 0 <= i <= self.num_stages:
            raise ProblemDefinitionError(f"stage {i} out of range")
        return 1 if i == self.num_stages else self._cols

    def initial_vector(self) -> np.ndarray:
        return -self.energy[0]

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            return np.array([np.max(v)])
        left = np.concatenate(([NEG_INF], v[:-1]))
        right = np.concatenate((v[1:], [NEG_INF]))
        return -self.energy[i] + np.maximum(np.maximum(left, v), right)

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            return np.array([np.max(v)]), np.array([int(np.argmax(v))], dtype=np.int64)
        W = self._cols
        left = np.concatenate(([NEG_INF], v[:-1]))
        right = np.concatenate((v[1:], [NEG_INF]))
        stacked = np.stack([left, v, right])  # candidate order: j-1, j, j+1
        choice = np.argmax(stacked, axis=0)  # ties -> leftmost (lowest index)
        vals = stacked[choice, np.arange(W)] - self.energy[i]
        pred = np.arange(W) + (choice - 1)
        return vals, pred.astype(np.int64)

    def stage_cost(self, i: int) -> float:
        return 1.0 if i == self.num_stages else float(3 * self._cols)

    def edge_weight(self, i: int, j: int, k: int) -> float:
        self.check_stage_index(i)
        if i == self.num_stages:
            return 0.0
        return -float(self.energy[i, j]) if abs(j - k) <= 1 else NEG_INF

    # ------------------------------------------------------------------
    def extract(self, solution: LTDPSolution) -> np.ndarray:
        """Column index of the seam in each image row (length = rows)."""
        return solution.path[: self._rows].astype(np.int64)
