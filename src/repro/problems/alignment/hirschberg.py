"""Hirschberg's linear-space global alignment (paper reference [12]).

The paper cites Hirschberg 1975 as the canonical LCS reference; the
algorithm matters here for the same reason banded stages do — §5 notes
that limiting memory is part of making large alignments practical
("the entire table need not be stored in memory").  Hirschberg's
divide-and-conquer computes an *optimal global alignment* in O(n·m)
time but only O(min(n, m)) space: split the first sequence in half,
find the optimal crossing column of the second by combining a forward
score row against a reversed backward score row, recurse on the two
sub-rectangles.

We implement it for the linear-gap Needleman–Wunsch objective so tests
can validate it against both the reference DP and the banded LTDP
formulation, and as a practical tool for aligning sequences whose full
table would not fit in memory.
"""

from __future__ import annotations

import numpy as np

from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.alignment.traceback import Alignment, Move

__all__ = ["nw_score_last_row", "hirschberg_alignment"]


def nw_score_last_row(
    a: np.ndarray, b: np.ndarray, scoring: ScoringScheme
) -> np.ndarray:
    """Last row of the NW score table in O(|b|) space (vectorized rows).

    ``out[j]`` = best global alignment score of all of ``a`` against
    ``b[:j]``.
    """
    if not scoring.is_linear:
        raise ValueError("Hirschberg variant implemented for linear gaps")
    d = scoring.gap_open
    m = len(b)
    prev = -d * np.arange(m + 1, dtype=np.float64)
    for i in range(1, len(a) + 1):
        cur = np.empty(m + 1)
        cur[0] = -d * i
        if m:
            sub = scoring.score_row(int(a[i - 1]), b)
            diag = prev[:-1] + sub
            up = prev[1:] - d
            best = np.maximum(diag, up)
            # Left moves: tropical prefix scan with decay d.
            idx = np.arange(m + 1, dtype=np.float64)
            t = np.concatenate(([cur[0]], best)) + d * idx
            cur = np.maximum.accumulate(t) - d * idx
        prev = cur
    return prev


def hirschberg_alignment(
    a: np.ndarray,
    b: np.ndarray,
    scoring: ScoringScheme | None = None,
) -> Alignment:
    """Optimal global alignment in linear space (Hirschberg 1975).

    Returns an :class:`Alignment` whose priced score equals the full
    NW optimum.  Move indices are 1-based like the LTDP traceback's.
    """
    scoring = scoring if scoring is not None else ScoringScheme.unit_linear()
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)

    moves: list[Move] = []

    def align(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> None:
        """Emit moves aligning a[a_lo:a_hi] with b[b_lo:b_hi]."""
        sub_a = a[a_lo:a_hi]
        sub_b = b[b_lo:b_hi]
        if len(sub_a) == 0:
            for j in range(b_lo + 1, b_hi + 1):
                moves.append(("L", a_lo, j))
            return
        if len(sub_a) == 1:
            _align_single_row(sub_a[0], a_lo, b_lo, b_hi)
            return
        mid = len(sub_a) // 2
        left = nw_score_last_row(sub_a[:mid], sub_b, scoring)
        right = nw_score_last_row(sub_a[mid:][::-1], sub_b[::-1], scoring)[::-1]
        split = int(np.argmax(left + right))
        align(a_lo, a_lo + mid, b_lo, b_lo + split)
        align(a_lo + mid, a_hi, b_lo + split, b_hi)

    def _align_single_row(sym: int, a_idx: int, b_lo: int, b_hi: int) -> None:
        """Optimally align one ``a`` symbol against ``b[b_lo:b_hi]``."""
        d = scoring.gap_open
        width = b_hi - b_lo
        if width == 0:
            moves.append(("U", a_idx + 1, b_lo))
            return
        # Either delete the symbol (all-left + one up), or match it at
        # one position j with gaps around.
        best_j = None
        best_score = -d * (width + 1)  # pure gaps
        for j in range(b_lo + 1, b_hi + 1):
            s = scoring.score_pair(sym, int(b[j - 1])) - d * (width - 1)
            if s > best_score:
                best_score = s
                best_j = j
        if best_j is None:
            moves.append(("U", a_idx + 1, b_lo))
            for j in range(b_lo + 1, b_hi + 1):
                moves.append(("L", a_idx + 1, j))
            return
        for j in range(b_lo + 1, best_j):
            moves.append(("L", a_idx, j))
        moves.append(("D", a_idx + 1, best_j))
        for j in range(best_j + 1, b_hi + 1):
            moves.append(("L", a_idx + 1, j))

    align(0, len(a), 0, len(b))
    aln = Alignment.from_moves(a, b, moves, score=0.0)
    return Alignment(
        top=aln.top,
        bottom=aln.bottom,
        score=aln.priced_score(scoring),
        moves=moves,
    )
