"""Longest Common Subsequence as banded LTDP (paper §5, §6.3.4).

``C[i, j] = max( C[i-1, j-1] + δ_ij, C[i-1, j], C[i, j-1] )`` with
``δ_ij = 1`` when ``a[i] == b[j]`` — a :class:`BandedAlignmentProblem`
with zero gap penalties and a 0/1 substitution score.

The paper's diff-style usage restricts solutions to a fixed-width band
around the diagonal ("ensuring that the LCS is still reasonably
similar to the input strings", §5); ``width >= len(a) + len(b)``
degenerates to the exact unbanded LCS.
"""

from __future__ import annotations

import numpy as np

from repro.ltdp.problem import LTDPSolution
from repro.problems.alignment.banded import BandedAlignmentProblem
from repro.problems.alignment.traceback import expand_banded_path

__all__ = ["LCSProblem"]


class LCSProblem(BandedAlignmentProblem):
    """LCS length (and one witness subsequence) of two symbol arrays.

    The optimal objective (``solution.score``) is the LCS length
    restricted to the band; :meth:`extract` returns one longest common
    subsequence as a symbol array.
    """

    gap_up = 0.0
    gap_left = 0.0

    def _scores_integral(self) -> bool:
        return True  # 0/1 match scores, zero gaps, zero base case

    def match_score(self, i: int, col: np.ndarray) -> np.ndarray:
        return (self.b[col - 1] == self.a[i - 1]).astype(np.float64)

    def row0_value(self, j: np.ndarray) -> np.ndarray:
        return np.zeros(j.shape[0], dtype=np.float64)

    # ------------------------------------------------------------------
    def extract(self, solution: LTDPSolution) -> np.ndarray:
        """One longest common subsequence (symbols where the path took
        a matching diagonal)."""
        moves = expand_banded_path(self, solution)
        out = [
            self.a[i - 1]
            for op, i, j in moves
            if op == "D" and self.a[i - 1] == self.b[j - 1]
        ]
        return np.asarray(out, dtype=self.a.dtype)
