"""Needleman–Wunsch global alignment as banded LTDP (paper §5, §6.3.3).

``s[i, j] = max( s[i-1, j-1] + m[i, j], s[i-1, j] - d, s[i, j-1] - d )``
with base cases ``s[i, 0] = -i·d`` and ``s[0, j] = -j·d`` — a
:class:`BandedAlignmentProblem` with a linear gap penalty ``d`` and an
arbitrary substitution score.  (The base cases are linear too:
``s[i, 0] = s[i-1, 0] - d``, so they need no special treatment in the
stage transform.)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPSolution
from repro.problems.alignment.banded import BandedAlignmentProblem
from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.alignment.traceback import Alignment, expand_banded_path

__all__ = ["NeedlemanWunschProblem"]


class NeedlemanWunschProblem(BandedAlignmentProblem):
    """Banded global alignment with a linear gap penalty.

    ``solution.score`` is the best global alignment score within the
    band; :meth:`extract` reconstructs the alignment itself.
    """

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        width: int,
        scoring: ScoringScheme | None = None,
    ) -> None:
        super().__init__(a, b, width=width)
        self.scoring = scoring if scoring is not None else ScoringScheme.unit_linear()
        if not self.scoring.is_linear:
            raise ProblemDefinitionError(
                "the paper's NW recurrence uses a single linear penalty d; "
                "use SmithWatermanProblem for affine gaps"
            )

    @property
    def gap_up(self) -> float:
        return self.scoring.gap_open

    @property
    def gap_left(self) -> float:
        return self.scoring.gap_open

    def _scores_integral(self) -> bool:
        sc = self.scoring
        if sc.substitution is not None:
            sub = np.asarray(sc.substitution, dtype=np.float64)
            if not np.all(sub == np.floor(sub)):
                return False
        elif not (float(sc.match).is_integer() and float(sc.mismatch).is_integer()):
            return False
        return float(sc.gap_open).is_integer()

    def _same_transform_params(self, base: BandedAlignmentProblem) -> bool:
        if not super()._same_transform_params(base):
            return False
        mine, theirs = self.scoring, base.scoring
        if (mine.match, mine.mismatch, mine.gap_open, mine.gap_extend) != (
            theirs.match,
            theirs.mismatch,
            theirs.gap_open,
            theirs.gap_extend,
        ):
            return False
        if (mine.substitution is None) != (theirs.substitution is None):
            return False
        return mine.substitution is None or np.array_equal(
            mine.substitution, theirs.substitution
        )

    def match_score(self, i: int, col: np.ndarray) -> np.ndarray:
        return self.scoring.score_row(self.a[i - 1], self.b[col - 1])

    def row0_value(self, j: np.ndarray) -> np.ndarray:
        return -self.scoring.gap_open * j.astype(np.float64)

    # ------------------------------------------------------------------
    def extract(self, solution: LTDPSolution) -> Alignment:
        """The optimal global alignment as aligned index pairs + gap ops."""
        moves = expand_banded_path(self, solution)
        return Alignment.from_moves(self.a, self.b, moves, score=solution.score)
