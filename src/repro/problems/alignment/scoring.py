"""Scoring schemes for sequence alignment.

A :class:`ScoringScheme` bundles a substitution score and gap
penalties.  Penalties are stored as non-negative magnitudes (the
recurrences subtract them).  ``gap_open == gap_extend`` gives linear
gaps; Needleman–Wunsch in the paper uses a linear penalty ``d``,
Smith–Waterman uses affine gaps (paper §5, reference [8]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScoringScheme", "encode_sequence", "DNA_ALPHABET"]

#: Canonical nucleotide alphabet used by the synthetic-genome generator.
DNA_ALPHABET = "ACGT"


def encode_sequence(seq, alphabet: str = DNA_ALPHABET) -> np.ndarray:
    """Map a string (or iterable of symbols) to int64 codes.

    Integer arrays pass through unchanged (already encoded).
    """
    if isinstance(seq, np.ndarray) and np.issubdtype(seq.dtype, np.integer):
        return seq.astype(np.int64)
    lookup = {ch: i for i, ch in enumerate(alphabet)}
    try:
        return np.array([lookup[ch] for ch in seq], dtype=np.int64)
    except KeyError as exc:
        raise ValueError(f"symbol {exc.args[0]!r} not in alphabet {alphabet!r}") from exc


@dataclass(frozen=True)
class ScoringScheme:
    """Match/mismatch substitution scores plus affine gap penalties.

    Attributes
    ----------
    match:
        Score for aligning identical symbols.
    mismatch:
        Score for aligning different symbols (usually negative).
    gap_open:
        Penalty magnitude for opening a gap (subtracted).
    gap_extend:
        Penalty magnitude for each further gap position.  Equal to
        ``gap_open`` for linear gaps.
    substitution:
        Optional full substitution matrix ``(alphabet, alphabet)``;
        overrides match/mismatch when given.
    """

    match: float = 2.0
    mismatch: float = -1.0
    gap_open: float = 2.0
    gap_extend: float = 2.0
    substitution: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.gap_open < 0 or self.gap_extend < 0:
            raise ValueError("gap penalties are magnitudes and must be >= 0")
        if self.gap_open < self.gap_extend:
            raise ValueError(
                "affine gaps require gap_open >= gap_extend (otherwise "
                "splitting a gap would beat extending it and the closed-form "
                "stage scan is invalid)"
            )
        if self.substitution is not None:
            sub = np.asarray(self.substitution, dtype=np.float64)
            if sub.ndim != 2 or sub.shape[0] != sub.shape[1]:
                raise ValueError("substitution matrix must be square")
            object.__setattr__(self, "substitution", sub)

    @property
    def is_linear(self) -> bool:
        return self.gap_open == self.gap_extend

    # ------------------------------------------------------------------
    def score_pair(self, a: int, b: int) -> float:
        """Substitution score for aligned symbol codes ``a`` and ``b``."""
        if self.substitution is not None:
            return float(self.substitution[a, b])
        return self.match if a == b else self.mismatch

    def score_row(self, a: int, b_row: np.ndarray) -> np.ndarray:
        """Vector of substitution scores of symbol ``a`` against ``b_row``."""
        if self.substitution is not None:
            return self.substitution[a, b_row]
        return np.where(b_row == a, self.match, self.mismatch)

    def gap_cost(self, length: int) -> float:
        """Total penalty magnitude of a gap of the given length (0 → 0)."""
        if length < 0:
            raise ValueError("gap length must be >= 0")
        if length == 0:
            return 0.0
        return self.gap_open + self.gap_extend * (length - 1)

    @classmethod
    def unit_linear(cls, gap: float = 1.0) -> "ScoringScheme":
        """match=+1/mismatch=-1 with a linear gap — a common NW default."""
        return cls(match=1.0, mismatch=-1.0, gap_open=gap, gap_extend=gap)
