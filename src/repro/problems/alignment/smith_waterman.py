"""Smith–Waterman local alignment with affine gaps as LTDP (paper §5, §6.3.2).

Column-stage formulation: stage ``j`` is database position ``j``; the
stage vector stacks, over the whole query (length ``q``):

========  =======  ====================================================
index     cell     meaning
========  =======  ====================================================
0         ``Z``    zero anchor: a subproblem pinned to the constant 0
                   line (``Z_j = Z_{j-1} + 0``), linearizing the
                   ``max(…, 0)`` restart — "the constants in the A_i
                   matrices need to be set accordingly" (§5)
1..q      ``H_i``  best local-alignment score ending at (i, j)
q+1..2q   ``E_i``  best score ending at (i, j) inside a database-side
                   gap (Gotoh's horizontal state)
========  =======  ====================================================

The query-side (vertical, within-stage) affine gap state ``F`` is
folded into the stage transform with the closed form
``H[i] = max(entry[i], max_{i'<i} entry[i'] - open - ext·(i-i'-1))``
(valid because ``open >= ext``), evaluated as a decayed cummax — the
same lazy-F elimination Farrar's striped SIMD kernel performs.

**The answer is a reduction, not a vector cell.**  The paper's §5
formulation adds a running-maximum subproblem per stage, but a maximum
accumulated *across* stages can never become tropically parallel once
the global optimum lies in an earlier processor's range (the stale
accumulator never refreshes), which would defeat rank convergence.
An implementation reusing Farrar's kernel as a black box — the paper's
actual setup — keeps the max outside the stage vector and reduces it
at the end.  We do the same through the framework's *stage objective*
protocol: the objective ``max_i H[i] - Z`` is shift-invariant, so it
is exact even on the offset vectors a parallel run produces, and the
traceback starts from the reduced argmax cell.

Convergence is extremely fast because a local alignment restarts
whenever the score hits the zero line, decoupling distant stages (the
paper's near-perfect SW efficiency in Fig 8 comes from exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.problems.alignment.scoring import ScoringScheme
from repro.semiring.tropical import NEG_INF

__all__ = ["SmithWatermanProblem", "LocalAlignmentSummary"]


@dataclass(frozen=True)
class LocalAlignmentSummary:
    """Where the optimal local alignment lives (1-based, inclusive windows)."""

    score: float
    db_window: tuple[int, int]
    query_window: tuple[int, int]


class SmithWatermanProblem(LTDPProblem):
    """Local alignment of ``query`` against ``database`` with affine gaps.

    ``solution.score`` is the maximal local alignment score (equals the
    max over the full Gotoh H table); :meth:`extract` summarizes where
    the optimum lies.
    """

    tracks_stage_objective = True

    def __init__(
        self,
        query: np.ndarray,
        database: np.ndarray,
        *,
        scoring: ScoringScheme | None = None,
    ) -> None:
        query = np.asarray(query, dtype=np.int64)
        database = np.asarray(database, dtype=np.int64)
        if query.ndim != 1 or database.ndim != 1 or not query.size or not database.size:
            raise ProblemDefinitionError("query and database must be non-empty 1-D")
        self.query = query
        self.database = database
        self.scoring = scoring if scoring is not None else ScoringScheme()
        self._q = len(query)
        self._idx = np.arange(self._q, dtype=np.float64)

    # -- layout helpers ---------------------------------------------------
    @property
    def _h_slice(self) -> slice:
        return slice(1, 1 + self._q)

    @property
    def _e_slice(self) -> slice:
        return slice(1 + self._q, 1 + 2 * self._q)

    # -- LTDP interface -----------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.database)

    def stage_width(self, i: int) -> int:
        if not 0 <= i <= self.num_stages:
            raise ProblemDefinitionError(f"stage {i} out of range")
        return 2 * self._q + 1

    def initial_vector(self) -> np.ndarray:
        v = np.full(2 * self._q + 1, NEG_INF)
        v[0] = 0.0  # Z: the zero line
        v[self._h_slice] = 0.0  # H[i, 0] = 0 (local alignments restart freely)
        return v  # E[i, 0] = -inf: no database-side gap before the start

    def _stage_arrays(
        self, i: int, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Compute (entry, entry_pred, e_new, e_pred) for stage ``i``."""
        q = self._q
        go, ge = self.scoring.gap_open, self.scoring.gap_extend
        z_p = v[0]
        h_p = v[self._h_slice]
        e_p = v[self._e_slice]
        scores = self.scoring.score_row(int(self.database[i - 1]), self.query)
        with np.errstate(invalid="ignore"):
            # E (database-side gap): from H or E of the previous stage.
            from_h = h_p - go
            from_e = e_p - ge
            take_h = from_h >= from_e  # tie -> H (the lower index)
            e_new = np.where(take_h, from_h, from_e)
            e_pred = np.where(take_h, 1 + np.arange(q), 1 + q + np.arange(q))
            # Entry: diagonal vs zero-restart vs E, preferring
            # diag > restart > E on ties (deterministic + shift-invariant).
            diag_src = np.concatenate(([z_p], h_p[:-1]))
            diag = diag_src + scores
            diag_pred = np.concatenate(([0], 1 + np.arange(q - 1)))
            entry = diag.copy()
            entry_pred = diag_pred.copy()
            restart_better = z_p > entry
            entry = np.where(restart_better, z_p, entry)
            entry_pred = np.where(restart_better, 0, entry_pred)
            e_better = e_new > entry
            entry = np.where(e_better, e_new, entry)
            entry_pred = np.where(e_better, e_pred, entry_pred)
        return entry, entry_pred.astype(np.int64), e_new, e_pred.astype(np.int64)

    def _vertical_closure(
        self, entry: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold the query-side affine gap state F into H (lazy-F closed form).

        Returns ``(h, winner)`` where ``winner[i]`` is the entry row the
        optimum entered the column at (``i`` itself when no vertical gap).
        """
        q = self._q
        go, ge = self.scoring.gap_open, self.scoring.gap_extend
        with np.errstate(invalid="ignore"):
            t = entry + ge * self._idx
            cm = np.maximum.accumulate(t)
            newmax = np.empty(q, dtype=bool)
            newmax[0] = True
            newmax[1:] = t[1:] > cm[:-1]
            run_arg = np.maximum.accumulate(np.where(newmax, np.arange(q), -1))
            gap_val = np.full(q, NEG_INF)
            if q > 1:
                gap_val[1:] = cm[:-1] + (ge - go) - ge * self._idx[1:]
            take_gap = gap_val > entry  # tie -> no gap (enter at own row)
            h = np.where(take_gap, gap_val, entry)
            winner = np.where(take_gap, np.concatenate(([0], run_arg[:-1])), np.arange(q))
        return h, winner.astype(np.int64)

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        entry, _, e_new, _ = self._stage_arrays(i, v)
        h, _ = self._vertical_closure(entry)
        out = np.empty_like(v)
        out[0] = v[0]
        out[self._h_slice] = h
        out[self._e_slice] = e_new
        return out

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        entry, entry_pred, e_new, e_pred = self._stage_arrays(i, v)
        h, winner = self._vertical_closure(entry)
        out = np.empty_like(v)
        pred = np.empty(v.shape[0], dtype=np.int64)
        out[0] = v[0]
        pred[0] = 0
        out[self._h_slice] = h
        pred[self._h_slice] = entry_pred[winner]
        out[self._e_slice] = e_new
        pred[self._e_slice] = e_pred
        return out, pred

    def stage_cost(self, i: int) -> float:
        # Four lanes over the query: entry, E, vertical closure, and the
        # fused column-max reduction (Farrar's kernel tracks the running
        # maximum inside the sweep, so it is part of the stage cost...).
        return float(4 * self._q + 1)

    def stage_objective_cost(self, i: int) -> float:
        # ...and therefore costs nothing extra at reduction time.
        return 0.0

    # -- stage objective ----------------------------------------------------
    def stage_objective(self, i: int, vector: np.ndarray) -> tuple[float, int]:
        """``max_i H[i] - Z``: the true local score, offset-free.

        Subtracting the anchor makes the value invariant under the
        tropical scalar a parallel run's stored vectors carry.
        """
        h = vector[self._h_slice]
        cell = int(np.argmax(h))  # first maximum: deterministic tie-break
        return float(h[cell] - vector[0]), cell + 1

    # ------------------------------------------------------------------
    def extract(self, solution: LTDPSolution) -> LocalAlignmentSummary:
        """Locate the optimal local alignment from the stage-level path.

        The traceback starts at the reduced objective cell; stages whose
        path cell is an H/E subproblem are the database window of the
        alignment, and the H rows visited bound the query window.  (The
        per-cell trace within a column is collapsed by the stage
        transform; tests validate the score against the reference
        Gotoh DP.)
        """
        q = self._q
        end_stage = solution.objective_stage or 0
        path = solution.path
        body = [
            (j, int(path[j]))
            for j in range(0, end_stage + 1)
            if path[j] >= 1
        ]
        if not body:
            return LocalAlignmentSummary(
                score=solution.score, db_window=(0, 0), query_window=(0, 0)
            )
        stages = [j for j, _ in body]
        rows = [c if c <= q else c - q for _, c in body]
        return LocalAlignmentSummary(
            score=solution.score,
            db_window=(min(stages), end_stage),
            query_window=(min(rows), max(rows)),
        )
