"""Reference O(nm) alignment DPs — slow, obviously-correct oracles.

These are the ground truth the LTDP formulations, the bit-parallel LCS
and the striped Smith–Waterman are all tested against.  Plain loops +
full tables; use only on test-sized inputs.
"""

from __future__ import annotations

import numpy as np

from repro.problems.alignment.scoring import ScoringScheme
from repro.semiring.tropical import NEG_INF

__all__ = [
    "lcs_table",
    "lcs_length_reference",
    "lcs_backtrack",
    "nw_table",
    "nw_score_reference",
    "sw_table",
    "sw_score_reference",
    "banded_nw_score_reference",
    "banded_lcs_length_reference",
]


def lcs_table(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full LCS DP table ``C[i, j]`` = LCS length of ``a[:i]`` and ``b[:j]``."""
    n, m = len(a), len(b)
    C = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if a[i - 1] == b[j - 1]:
                C[i, j] = C[i - 1, j - 1] + 1
            else:
                C[i, j] = max(C[i - 1, j], C[i, j - 1])
    return C

def lcs_length_reference(a: np.ndarray, b: np.ndarray) -> int:
    return int(lcs_table(a, b)[len(a), len(b)])


def lcs_backtrack(a: np.ndarray, b: np.ndarray) -> list:
    """One longest common subsequence (as a list of symbols)."""
    C = lcs_table(a, b)
    out = []
    i, j = len(a), len(b)
    while i > 0 and j > 0:
        if a[i - 1] == b[j - 1] and C[i, j] == C[i - 1, j - 1] + 1:
            out.append(a[i - 1])
            i -= 1
            j -= 1
        elif C[i - 1, j] >= C[i, j - 1]:
            i -= 1
        else:
            j -= 1
    return out[::-1]


def nw_table(a: np.ndarray, b: np.ndarray, scoring: ScoringScheme) -> np.ndarray:
    """Global-alignment score table with a linear gap penalty.

    Requires ``scoring.is_linear`` (the paper's NW recurrence uses a
    single penalty ``d``).
    """
    if not scoring.is_linear:
        raise ValueError("reference NW implements linear gaps only")
    d = scoring.gap_open
    n, m = len(a), len(b)
    S = np.empty((n + 1, m + 1), dtype=np.float64)
    S[0, :] = -d * np.arange(m + 1)
    S[:, 0] = -d * np.arange(n + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            S[i, j] = max(
                S[i - 1, j - 1] + scoring.score_pair(a[i - 1], b[j - 1]),
                S[i - 1, j] - d,
                S[i, j - 1] - d,
            )
    return S


def nw_score_reference(a: np.ndarray, b: np.ndarray, scoring: ScoringScheme) -> float:
    return float(nw_table(a, b, scoring)[len(a), len(b)])


def sw_table(a: np.ndarray, b: np.ndarray, scoring: ScoringScheme) -> np.ndarray:
    """Local-alignment H table with affine gaps (Gotoh's algorithm).

    ``a`` indexes rows (the query), ``b`` columns (the database).
    """
    go, ge = scoring.gap_open, scoring.gap_extend
    n, m = len(a), len(b)
    H = np.zeros((n + 1, m + 1), dtype=np.float64)
    E = np.full((n + 1, m + 1), NEG_INF)  # gap in b-direction (left moves)
    F = np.full((n + 1, m + 1), NEG_INF)  # gap in a-direction (up moves)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            E[i, j] = max(H[i, j - 1] - go, E[i, j - 1] - ge)
            F[i, j] = max(H[i - 1, j] - go, F[i - 1, j] - ge)
            H[i, j] = max(
                0.0,
                H[i - 1, j - 1] + scoring.score_pair(a[i - 1], b[j - 1]),
                E[i, j],
                F[i, j],
            )
    return H


def sw_score_reference(a: np.ndarray, b: np.ndarray, scoring: ScoringScheme) -> float:
    return float(sw_table(a, b, scoring).max())


def banded_nw_score_reference(
    a: np.ndarray, b: np.ndarray, scoring: ScoringScheme, width: int
) -> float:
    """NW restricted to the band ``|i - j| <= width`` (paper §5 LCS note)."""
    if not scoring.is_linear:
        raise ValueError("reference banded NW implements linear gaps only")
    if abs(len(a) - len(b)) > width:
        raise ValueError("band excludes the endpoint; increase width")
    d = scoring.gap_open
    n, m = len(a), len(b)
    S = np.full((n + 1, m + 1), NEG_INF)
    for j in range(0, min(m, width) + 1):
        S[0, j] = -d * j
    for i in range(1, n + 1):
        for j in range(max(0, i - width), min(m, i + width) + 1):
            if j == 0:
                S[i, 0] = -d * i
                continue
            best = S[i - 1, j - 1] + scoring.score_pair(a[i - 1], b[j - 1])
            if abs(i - 1 - j) <= width:
                best = max(best, S[i - 1, j] - d)
            best = max(best, S[i, j - 1] - d)
            S[i, j] = best
    return float(S[n, m])


def banded_lcs_length_reference(a: np.ndarray, b: np.ndarray, width: int) -> float:
    """LCS length restricted to the band ``|i - j| <= width``."""
    if abs(len(a) - len(b)) > width:
        raise ValueError("band excludes the endpoint; increase width")
    n, m = len(a), len(b)
    C = np.full((n + 1, m + 1), NEG_INF)
    for j in range(0, min(m, width) + 1):
        C[0, j] = 0.0
    for i in range(1, n + 1):
        for j in range(max(0, i - width), min(m, i + width) + 1):
            if j == 0:
                C[i, 0] = 0.0
                continue
            best = C[i - 1, j - 1] + (1.0 if a[i - 1] == b[j - 1] else 0.0)
            if abs(i - 1 - j) <= width:
                best = max(best, C[i - 1, j])
            best = max(best, C[i, j - 1])
            C[i, j] = best
    return float(C[n, m])
