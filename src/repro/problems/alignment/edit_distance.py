"""Levenshtein edit distance as LTDP (a min-plus instance, §4.8 view).

Edit distance is the min-plus sibling of the alignment family:

``D[i, j] = min( D[i-1, j-1] + [a_i ≠ b_j], D[i-1, j] + 1, D[i, j-1] + 1 )``.

Negating every weight turns min-plus into the library's max-plus
convention ("Alternately, one can negate all the weights and change
the max to a min", paper §2) — which makes edit distance exactly a
:class:`~repro.problems.alignment.needleman_wunsch.NeedlemanWunschProblem`
with match 0, mismatch −1 and gap penalty 1, and
``distance = −score``.  The wrapper keeps that translation in one
audited place and exposes a distance-flavoured API.
"""

from __future__ import annotations

import numpy as np

from repro.ltdp.problem import LTDPSolution
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.scoring import ScoringScheme

__all__ = ["EditDistanceProblem", "edit_distance_reference"]


def edit_distance_reference(a, b) -> int:
    """Plain O(nm) Levenshtein distance (test oracle)."""
    a = np.asarray(a)
    b = np.asarray(b)
    prev = np.arange(len(b) + 1, dtype=np.int64)
    for i in range(1, len(a) + 1):
        cur = np.empty_like(prev)
        cur[0] = i
        for j in range(1, len(b) + 1):
            cur[j] = min(
                prev[j - 1] + (0 if a[i - 1] == b[j - 1] else 1),
                prev[j] + 1,
                cur[j - 1] + 1,
            )
        prev = cur
    return int(prev[-1])


class EditDistanceProblem(NeedlemanWunschProblem):
    """Banded Levenshtein distance between two symbol arrays.

    ``distance(solution) == -solution.score``; a band narrower than the
    true distance may overestimate it (paths are then confined), the
    usual banded-edit-distance caveat.
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, *, width: int) -> None:
        scoring = ScoringScheme(
            match=0.0, mismatch=-1.0, gap_open=1.0, gap_extend=1.0
        )
        super().__init__(a, b, width=width, scoring=scoring)

    @staticmethod
    def distance(solution: LTDPSolution) -> int:
        """The edit distance encoded by a solution of this problem."""
        return int(round(-solution.score))
