"""Alignment reconstruction from LTDP stage-level paths.

The framework's backward phase yields one table cell per stage — the
cell the optimum occupied when it left each row.  Within-row left-move
runs are collapsed into the stage transform, so this module re-expands
them: between consecutive path cells ``(i-1, c_in) → (i, c_out)`` the
row was entered either diagonally at column ``c_in + 1`` or vertically
at column ``c_in``; whichever prices higher is the move the kernel's
maximum took (ties cannot change the total score).  The remaining
columns up to ``c_out`` are horizontal gap moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.semiring.tropical import NEG_INF

__all__ = ["Move", "expand_banded_path", "Alignment"]

#: A move is ``(op, row, col)`` with 1-based indices of the consumed
#: symbols: ``("D", i, j)`` aligns a[i-1]/b[j-1], ``("U", i, j)`` is a
#: vertical gap consuming a[i-1] at column j, ``("L", i, j)`` a
#: horizontal gap consuming b[j-1] in row i.
Move = tuple[str, int, int]


def expand_banded_path(problem, solution) -> list[Move]:
    """Expand a banded problem's stage path into elementary edit moves."""
    from repro.problems.alignment.banded import band_bounds

    path = solution.path
    n, m, w = problem._n, problem._m, problem.width
    moves: list[Move] = []
    lo0, _ = band_bounds(0, m, w)
    c_prev = lo0 + int(path[0])
    for j in range(1, c_prev + 1):
        moves.append(("L", 0, j))
    for i in range(1, n + 1):
        lo, _ = band_bounds(i, m, w)
        c_out = lo + int(path[i])
        c_in = c_prev
        g_left = problem.gap_left
        diag_w = NEG_INF
        if c_out >= c_in + 1 and c_in + 1 >= max(lo, 1):
            match = float(problem.match_score(i, np.array([c_in + 1]))[0])
            diag_w = match - g_left * (c_out - c_in - 1)
        up_w = NEG_INF
        if c_out >= c_in and c_in >= lo:
            up_w = -problem.gap_up - g_left * (c_out - c_in)
        if diag_w == NEG_INF and up_w == NEG_INF:
            raise AssertionError(
                f"no valid move between path cells ({i - 1},{c_in}) → ({i},{c_out})"
            )
        if diag_w >= up_w:
            moves.append(("D", i, c_in + 1))
            e = c_in + 1
        else:
            moves.append(("U", i, c_in))
            e = c_in
        for col in range(e + 1, c_out + 1):
            moves.append(("L", i, col))
        c_prev = c_out
    return moves


@dataclass
class Alignment:
    """A pairwise alignment: two gapped symbol rows plus the score.

    ``top`` / ``bottom`` hold symbol codes with ``-1`` marking gaps.
    """

    top: np.ndarray
    bottom: np.ndarray
    score: float
    moves: list[Move]

    GAP = -1

    @classmethod
    def from_moves(
        cls, a: np.ndarray, b: np.ndarray, moves: list[Move], *, score: float
    ) -> "Alignment":
        top: list[int] = []
        bottom: list[int] = []
        for op, i, j in moves:
            if op == "D":
                top.append(int(a[i - 1]))
                bottom.append(int(b[j - 1]))
            elif op == "U":
                top.append(int(a[i - 1]))
                bottom.append(cls.GAP)
            elif op == "L":
                top.append(cls.GAP)
                bottom.append(int(b[j - 1]))
            else:  # pragma: no cover - moves are produced internally
                raise ValueError(f"unknown move op {op!r}")
        return cls(
            top=np.asarray(top, dtype=np.int64),
            bottom=np.asarray(bottom, dtype=np.int64),
            score=score,
            moves=moves,
        )

    # ------------------------------------------------------------------
    def priced_score(self, scoring) -> float:
        """Re-price the alignment under ``scoring`` (linear gaps).

        Used by tests to confirm the reconstructed alignment achieves
        the solver's reported score.
        """
        total = 0.0
        for top, bot in zip(self.top, self.bottom):
            if top == self.GAP or bot == self.GAP:
                total -= scoring.gap_open
            else:
                total += scoring.score_pair(int(top), int(bot))
        return total

    def render(self, alphabet: str = "ACGT", gap_char: str = "-") -> str:
        """Two-line human-readable rendering (examples / debugging)."""
        def line(row: np.ndarray) -> str:
            return "".join(
                gap_char if s == self.GAP else alphabet[s] for s in row
            )

        return line(self.top) + "\n" + line(self.bottom)

    def __len__(self) -> int:
        return int(self.top.size)
