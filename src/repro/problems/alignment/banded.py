"""Shared banded row-stage kernel for LCS and Needleman–Wunsch.

Stage formulation (paper Fig 6(b)): stage ``i`` is row ``i`` of the DP
table restricted to the band ``|i - j| <= width``.  The within-row
dependence ``C[i, j-1] → C[i, j]`` is *unrolled into the stage
transform* — tropically, the stage matrix composes one previous-row
step (diagonal / up move) with the within-row left-move closure, which
the kernel evaluates as a tropical prefix scan:

``C[i, j] = max_{e <= j} ( entry(e) - gap·(j - e) )``,
``entry(e) = max( C[i-1, e-1] + m(a_i, b_e),  C[i-1, e] - gap_up )``.

The scan is evaluated with the decayed-cummax identity
``max_e (entry(e) + g·e) - g·j`` in O(width) NumPy ops, and the
predecessor product (the previous-row cell the optimum entered from)
is tracked with a first-maximum running arg-max, keeping tie-breaking
deterministic and shift-invariant (Lemma 3's requirement).

Band cells are *real subproblems only*: band bounds are clipped to the
table, so every vector entry has at least one finite dependence and
the transformation matrices are non-trivial (§4.5) by construction.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.semiring.tropical import NEG_INF

__all__ = ["band_bounds", "BandedAlignmentProblem", "BandedStageState"]


@dataclass
class BandedStageState:
    """Resident §4.7 delta state: one stage's cached kernel evaluation.

    Everything the sparse fix-up kernel needs to repair a later
    evaluation of the same stage from a slightly different input:
    the input it was computed from plus every intermediate of the
    dense kernel (entry values/preds, scan running max and winner,
    and the finished output/pred vectors).  All arrays are treated
    as immutable once stored — repairs copy before patching.
    """

    in_vec: np.ndarray  # input the cached evaluation consumed
    entry: np.ndarray  # per-cell best value entering from the previous row
    epred: np.ndarray  # previous-stage index behind each entry value
    cm: np.ndarray  # scan running max (t-space)
    estar: np.ndarray  # scan winning entry position per cell
    out: np.ndarray  # kernel output (stage vector)
    pred: np.ndarray  # kernel predecessor output

    #: Sentinel state for the width-1 selector stage (no intermediates).
    SELECTOR = "selector"


def band_bounds(i: int, m: int, width: int) -> tuple[int, int]:
    """Column range ``[lo, hi]`` of the band at row ``i`` (table has m+1 columns)."""
    return max(0, i - width), min(m, i + width)


class BandedAlignmentProblem(LTDPProblem):
    """Base class: banded edit-style DP with linear penalties as LTDP.

    Subclasses provide the substitution scores and the two linear
    penalties (``gap_up`` for a vertical move consuming a row symbol,
    ``gap_left`` for a horizontal move consuming a column symbol) plus
    the row-0 base case.  Stage ``num_rows + 1`` is a width-1 selector
    moving the answer cell ``C[n, m]`` into the Fig-2 convention slot
    (subproblem 0 of the last stage).
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, *, width: int) -> None:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
            raise ProblemDefinitionError("sequences must be non-empty 1-D arrays")
        if width < 1:
            raise ProblemDefinitionError("band width must be >= 1")
        if abs(len(a) - len(b)) > width:
            raise ProblemDefinitionError(
                f"band width {width} excludes the endpoint "
                f"(|{len(a)} - {len(b)}| > width); widen the band"
            )
        self.a = a
        self.b = b
        self.width = width
        self._n = len(a)
        self._m = len(b)

    # -- to be provided by concrete problems ------------------------------
    @property
    @abstractmethod
    def gap_up(self) -> float:
        """Penalty magnitude of a vertical move (consume a row symbol)."""

    @property
    @abstractmethod
    def gap_left(self) -> float:
        """Penalty magnitude of a horizontal move (consume a column symbol)."""

    @abstractmethod
    def match_score(self, i: int, col: np.ndarray) -> np.ndarray:
        """Substitution scores of row symbol ``a[i-1]`` against columns ``col``.

        ``col`` holds 1-based column indices (aligning ``b[col-1]``).
        """

    @abstractmethod
    def row0_value(self, j: np.ndarray) -> np.ndarray:
        """Base-case values ``C[0, j]`` for column indices ``j``."""

    # -- LTDP interface ----------------------------------------------------
    @property
    def num_stages(self) -> int:
        return self._n + 1  # rows 1..n plus the selector stage

    def stage_width(self, i: int) -> int:
        if not 0 <= i <= self.num_stages:
            raise ProblemDefinitionError(f"stage {i} out of range")
        if i == self.num_stages:
            return 1
        lo, hi = band_bounds(i, self._m, self.width)
        return hi - lo + 1

    def initial_vector(self) -> np.ndarray:
        lo, hi = band_bounds(0, self._m, self.width)
        return self.row0_value(np.arange(lo, hi + 1)).astype(np.float64)

    def _selector_source(self) -> int:
        lo, _ = band_bounds(self._n, self._m, self.width)
        return self._m - lo

    def _entry_values(
        self, i: int, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Per-cell best value entering row ``i`` directly from row ``i-1``.

        Returns ``(entry, entry_pred, lo)`` where ``entry_pred`` indexes
        the previous stage vector.  Tie between diagonal and up breaks
        to the diagonal (the lower previous-stage index).
        """
        lo_p, hi_p = band_bounds(i - 1, self._m, self.width)
        lo, hi = band_bounds(i, self._m, self.width)
        W = hi - lo + 1
        if v.shape != (hi_p - lo_p + 1,):
            raise ProblemDefinitionError(
                f"stage {i} input has shape {v.shape}, expected ({hi_p - lo_p + 1},)"
            )
        entry = np.full(W, NEG_INF)
        epred = np.zeros(W, dtype=np.int64)
        # Up moves: previous-row cell in the same column.
        s = max(lo, lo_p)
        e = min(hi, hi_p)
        if s <= e:
            sl = slice(s - lo, e - lo + 1)
            entry[sl] = v[s - lo_p : e - lo_p + 1] - self.gap_up
            epred[sl] = np.arange(s - lo_p, e - lo_p + 1)
        # Diagonal moves: previous-row cell one column to the left.
        ds = max(lo, lo_p + 1, 1)
        de = min(hi, hi_p + 1)
        if ds <= de:
            cols = np.arange(ds, de + 1)
            diag = v[ds - 1 - lo_p : de - lo_p] + self.match_score(i, cols)
            sl = slice(ds - lo, de - lo + 1)
            better = diag >= entry[sl]
            entry[sl] = np.where(better, diag, entry[sl])
            epred[sl] = np.where(better, cols - 1 - lo_p, epred[sl])
        return entry, epred, lo

    def _scan(
        self, entry: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Within-row left-move closure: values and winning entry positions."""
        W = entry.shape[0]
        g = self.gap_left
        idx = np.arange(W, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            t = entry + g * idx
            cm = np.maximum.accumulate(t)
            newmax = np.empty(W, dtype=bool)
            newmax[0] = True
            newmax[1:] = t[1:] > cm[:-1]
            estar = np.maximum.accumulate(
                np.where(newmax, np.arange(W), -1)
            )
            vals = cm - g * idx
        return vals, estar

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            return np.array([v[self._selector_source()]])
        entry, _, _ = self._entry_values(i, v)
        vals, _ = self._scan(entry)
        return vals

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            k = self._selector_source()
            return np.array([v[k]]), np.array([k], dtype=np.int64)
        entry, epred, _ = self._entry_values(i, v)
        vals, estar = self._scan(entry)
        return vals, epred[estar]

    def stage_cost(self, i: int) -> float:
        return float(self.stage_width(i))

    # -- near-duplicate detection (serving layer) ----------------------
    def _same_transform_params(self, base: "BandedAlignmentProblem") -> bool:
        """Whether every non-``a``-dependent scoring input equals ``base``'s.

        Subclasses carrying extra scoring state (a substitution matrix,
        say) must extend this — a missed parameter silently breaks the
        :meth:`dirty_stages_against` bit-identity contract.
        """
        return (
            float(self.gap_up) == float(base.gap_up)
            and float(self.gap_left) == float(base.gap_left)
        )

    def dirty_stages_against(self, base: "LTDPProblem") -> "set[int] | None":
        """Stages whose transforms differ from ``base``'s, or ``None``.

        Banded-alignment stage ``i`` (``1 ≤ i ≤ n``) depends on ``a``
        only through ``a[i-1]`` (via :meth:`match_score`); ``b``, the
        band width and the gap penalties are global.  So two problems
        of the same concrete type with identical ``b``/geometry/scoring
        differ exactly at the stages whose ``a`` symbol changed — the
        row-0 base case and the width-1 selector stage never depend on
        ``a`` and stay clean.
        """
        if type(base) is not type(self):
            return None
        if (
            self.width != base.width
            or self._n != base._n
            or self._m != base._m
            or not np.array_equal(self.b, base.b)
            or not self._same_transform_params(base)
        ):
            return None
        return {int(k) + 1 for k in np.nonzero(self.a != base.a)[0]}

    # -- sparse delta fix-up (§4.7) ------------------------------------
    def _scores_integral(self) -> bool:
        """Exactness gate for the sparse fix-up kernel.

        Must return True only when every value this problem's kernel
        can produce — match scores and row-0 base cases included — is
        integral, so that applying a (then integral) anchor offset to a
        cached evaluation commutes bit-exactly with the dense kernel.
        """
        return False

    @property
    def supports_sparse_fixup(self) -> bool:
        return (
            float(self.gap_up).is_integer()
            and float(self.gap_left).is_integer()
            and self._scores_integral()
        )

    def apply_stage_with_state(self, i, v):
        """Dense evaluation that also caches the kernel intermediates."""
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            out, pred = self.apply_stage_with_pred(i, v)
            return out, pred, BandedStageState.SELECTOR
        entry, epred, _ = self._entry_values(i, v)
        with np.errstate(invalid="ignore"):
            idx = np.arange(entry.shape[0], dtype=np.float64)
            t = entry + self.gap_left * idx
            cm = np.maximum.accumulate(t)
            newmax = np.empty(entry.shape[0], dtype=bool)
            newmax[0] = True
            newmax[1:] = t[1:] > cm[:-1]
            estar = np.maximum.accumulate(
                np.where(newmax, np.arange(entry.shape[0]), -1)
            )
            vals = cm - self.gap_left * idx
        pred = epred[estar]
        state = BandedStageState(
            in_vec=v.copy(),
            entry=entry,
            epred=epred,
            cm=cm,
            estar=estar,
            out=vals,
            pred=pred,
        )
        return vals, pred, state

    def _sparse_entry_at(
        self, i: int, v: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Recompute ``(entry, epred)`` at the given band positions only.

        Elementwise replication of :meth:`_entry_values` — same
        operations in the same order, so results are bit-identical to
        the dense pass restricted to ``positions``.
        """
        lo_p, hi_p = band_bounds(i - 1, self._m, self.width)
        lo, hi = band_bounds(i, self._m, self.width)
        du = lo - lo_p
        entry = np.full(positions.shape[0], NEG_INF)
        epred = np.zeros(positions.shape[0], dtype=np.int64)
        s = max(lo, lo_p)
        e = min(hi, hi_p)
        up = (positions >= s - lo) & (positions <= e - lo)
        if up.any():
            k = positions[up] + du
            entry[up] = v[k] - self.gap_up
            epred[up] = k
        ds = max(lo, lo_p + 1, 1)
        de = min(hi, hi_p + 1)
        dg = (positions >= ds - lo) & (positions <= de - lo)
        if dg.any():
            cols = positions[dg] + lo
            diag = v[cols - 1 - lo_p] + self.match_score(i, cols)
            better = diag >= entry[dg]
            entry[dg] = np.where(better, diag, entry[dg])
            epred[dg] = np.where(better, cols - 1 - lo_p, epred[dg])
        return entry, epred

    #: Scan-repair chunk: the incremental fix-up re-runs the prefix scan
    #: this many cells at a time until it realigns with the cached scan.
    _SPARSE_CHUNK = 32

    def apply_stage_sparse(self, i, v, state, crossover):
        """§4.7 sparse fix-up: propagate only the changed *delta* positions.

        The new input is diffed against the cached evaluation's input in
        delta space: between changed delta positions the two inputs
        differ by a constant (piecewise) offset, so the cached entry
        values and scan state shift by that constant bit-exactly
        (integral arithmetic).  Only entries straddling a changed delta
        are recomputed, and the prefix scan is re-run only from those
        spots until its running max and winner realign with the cached
        scan (shifted by the local segment offset).  Returns ``None``
        (caller runs the dense kernel) when there is no usable cache,
        the ``-inf`` mask moved, values are non-integral (shifts would
        not be exact), or the changed-delta fraction exceeds
        ``crossover``.
        """
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            # Width-1 selector: "sparse" recomputation is the O(1) read.
            k = self._selector_source()
            return (
                np.array([v[k]]),
                np.array([k], dtype=np.int64),
                BandedStageState.SELECTOR,
                1.0,
            )
        if not isinstance(state, BandedStageState):
            return None
        in0 = state.in_vec
        if v.shape != in0.shape:
            return None
        fin = np.isfinite(v)
        if not np.array_equal(fin, np.isfinite(in0)) or not fin.any():
            return None  # -inf mask moved (or zero vector): repair void
        # Exactness gate, per call (belt to the problem-level braces):
        # integral values make every reordered float64 op exact.
        vf, of = v[fin], in0[fin]
        if not (np.all(vf == np.floor(vf)) and np.all(of == np.floor(of))):
            return None
        W_in = v.shape[0]
        W = state.out.shape[0]
        g = self.gap_left

        # Piecewise input offset: off[k] = v[k] - in0[k] at finite
        # positions, carried across -inf runs (a masked position that
        # stays masked never fabricates a segment boundary).
        off = np.empty(W_in)
        off[fin] = vf - of
        if not fin.all():
            idxs = np.where(fin, np.arange(W_in), -1)
            ff = np.maximum.accumulate(idxs)
            first = int(np.argmax(fin))
            off = off[np.where(ff >= 0, ff, first)]
        # Changed delta positions (§4.7): where the offset steps.
        dpos = np.flatnonzero(off[1:] != off[:-1]) + 1
        if dpos.size > crossover * W_in:
            return None  # too many changed deltas: dense is cheaper

        def seg_shift(a: np.ndarray, cs: float) -> np.ndarray:
            # cs == 0 copies bitwise (``+ 0.0`` would flip -0.0).
            return a.copy() if cs == 0.0 else a + cs

        if dpos.size == 0:
            # Tropically parallel input: the whole evaluation shifts by
            # the anchor offset (Lemma 3 keeps the predecessors fixed).
            c = float(off[0])
            if c == 0.0:
                return state.out.copy(), state.pred.copy(), state, 1.0
            with np.errstate(invalid="ignore"):
                new_state = BandedStageState(
                    in_vec=v.copy(),
                    entry=state.entry + c,
                    epred=state.epred,
                    cm=state.cm + c,
                    estar=state.estar,
                    out=state.out + c,
                    pred=state.pred,
                )
            return new_state.out.copy(), state.pred.copy(), new_state, 1.0

        # Geometry: entry j is fed by input j+du (up) and j+du-1 (diag).
        lo_p, hi_p = band_bounds(i - 1, self._m, self.width)
        lo, hi = band_bounds(i, self._m, self.width)
        du = lo - lo_p
        js = np.arange(W)
        up_valid = (js >= max(lo, lo_p) - lo) & (js <= min(hi, hi_p) - lo)
        dg_valid = (js >= max(lo, lo_p + 1, 1) - lo) & (js <= min(hi, hi_p + 1) - lo)
        off_up = np.zeros(W)
        off_up[up_valid] = off[js[up_valid] + du]
        off_dg = np.zeros(W)
        off_dg[dg_valid] = off[js[dg_valid] + du - 1]
        # Per-entry shift; entries straddling a changed delta (their two
        # feeds shifted by different constants) are recomputed exactly.
        centry = np.where(up_valid, off_up, off_dg)
        eset = js[up_valid & dg_valid & (off_up != off_dg)]
        with np.errstate(invalid="ignore"):
            entry_new = np.where(centry == 0.0, state.entry, state.entry + centry)
        epred_new = state.epred.copy()
        if eset.size:
            e_vals, e_preds = self._sparse_entry_at(i, v, eset)
            entry_new[eset] = e_vals
            epred_new[eset] = e_preds

        # Scan repair restarts wherever an entry was recomputed or the
        # segment shift steps (the max comparisons stop being uniform).
        dirty = np.union1d(
            eset, np.flatnonzero(centry[1:] != centry[:-1]) + 1
        ).astype(np.int64)
        cm_new = np.empty(W)
        estar_new = np.empty(W, dtype=np.int64)
        vals_new = np.empty(W)
        touched = 1.0 + float(eset.size)  # anchor + recomputed entries
        carry_cm = NEG_INF
        carry_estar = -1
        aligned = True  # scan state currently equals cached + local shift
        pos = 0
        with np.errstate(invalid="ignore"):
            while pos < W:
                nd = int(np.searchsorted(dirty, pos, side="left"))
                next_dirty = int(dirty[nd]) if nd < dirty.size else W
                if aligned and pos < next_dirty:
                    # Clean stretch: cached scan shifted by the segment
                    # offset — exact because the scan state matched at
                    # pos-1 and the entries here are uniformly shifted.
                    cs = float(centry[pos])
                    cm_new[pos:next_dirty] = seg_shift(state.cm[pos:next_dirty], cs)
                    estar_new[pos:next_dirty] = state.estar[pos:next_dirty]
                    vals_new[pos:next_dirty] = seg_shift(state.out[pos:next_dirty], cs)
                    carry_cm = float(cm_new[next_dirty - 1])
                    carry_estar = int(estar_new[next_dirty - 1])
                    pos = next_dirty
                    continue
                end = min(W, pos + self._SPARSE_CHUNK)
                idxf = np.arange(pos, end, dtype=np.float64)
                t = entry_new[pos:end] + g * idxf
                cm_chunk = np.maximum(np.maximum.accumulate(t), carry_cm)
                prev = np.empty(end - pos)
                prev[0] = carry_cm
                prev[1:] = cm_chunk[:-1]
                newmax = t > prev
                if pos == 0:
                    newmax[0] = True  # the dense scan seeds position 0
                estar_chunk = np.maximum(
                    np.maximum.accumulate(
                        np.where(newmax, np.arange(pos, end), -1)
                    ),
                    carry_estar,
                )
                cm_new[pos:end] = cm_chunk
                estar_new[pos:end] = estar_chunk
                vals_new[pos:end] = cm_chunk - g * idxf
                touched += float(end - pos)
                # Realignment: a position whose running max and winner
                # both equal the cached scan (shifted by its segment
                # offset) pins the scan back to "cached + shift" until
                # the next dirty position.
                align = np.flatnonzero(
                    (cm_chunk == state.cm[pos:end] + centry[pos:end])
                    & (estar_chunk == state.estar[pos:end])
                )
                if align.size:
                    r = pos + int(align[0])
                    touched -= float(end - 1 - r)  # beyond r: untouched
                    carry_cm = float(cm_new[r])
                    carry_estar = int(estar_new[r])
                    aligned = True
                    pos = r + 1
                else:
                    carry_cm = float(cm_chunk[-1])
                    carry_estar = int(estar_chunk[-1])
                    aligned = False
                    pos = end

        # One gather rebuilds the dense pred bit-exactly: clean regions
        # keep their cached winner, whose entry pred only moved if the
        # winner itself was recomputed (then epred_new holds it).
        pred_new = epred_new[estar_new]

        new_state = BandedStageState(
            in_vec=v.copy(),
            entry=entry_new,
            epred=epred_new,
            cm=cm_new,
            estar=estar_new,
            out=vals_new,
            pred=pred_new,
        )
        cells = min(touched, self.stage_cost(i))
        return vals_new.copy(), pred_new.copy(), new_state, cells

    def edge_weight(self, i: int, j: int, k: int) -> float:
        """Best within-row path weight from prev cell ``k`` into cell ``j``.

        Enter the row at column ``c_in + 1`` (diagonal) or ``c_in``
        (up), then take left moves to column ``c_out``.
        """
        self.check_stage_index(i)
        if i == self.num_stages:
            return 0.0 if k == self._selector_source() else NEG_INF
        lo_p, hi_p = band_bounds(i - 1, self._m, self.width)
        lo, hi = band_bounds(i, self._m, self.width)
        c_in = lo_p + k
        c_out = lo + j
        if not (0 <= k <= hi_p - lo_p and 0 <= j <= hi - lo):
            return NEG_INF
        best = NEG_INF
        g = self.gap_left
        if c_out >= c_in and c_out >= lo:  # up then (c_out - c_in) lefts
            lefts = c_out - c_in
            # All intermediate columns must be in the current band.
            if c_in >= lo:
                best = -self.gap_up - g * lefts
        if c_out >= c_in + 1 and c_in + 1 >= lo and c_in + 1 >= 1:
            m = float(self.match_score(i, np.array([c_in + 1]))[0])
            cand = m - g * (c_out - c_in - 1)
            best = max(best, cand)
        return best

    # ------------------------------------------------------------------
    def cell_value_path(self, solution: LTDPSolution) -> list[tuple[int, int]]:
        """The traced path as ``(row, column)`` table coordinates.

        Entry ``r`` of the result is the band cell the optimum passed
        through in row ``r`` (the cell from which the path moved to the
        next row; within-row left-move runs are collapsed, see
        :mod:`repro.problems.alignment.traceback` for full expansion).
        """
        coords = []
        for i in range(0, self._n + 1):
            lo, _ = band_bounds(i, self._m, self.width)
            coords.append((i, lo + int(solution.path[i])))
        return coords
