"""Shared banded row-stage kernel for LCS and Needleman–Wunsch.

Stage formulation (paper Fig 6(b)): stage ``i`` is row ``i`` of the DP
table restricted to the band ``|i - j| <= width``.  The within-row
dependence ``C[i, j-1] → C[i, j]`` is *unrolled into the stage
transform* — tropically, the stage matrix composes one previous-row
step (diagonal / up move) with the within-row left-move closure, which
the kernel evaluates as a tropical prefix scan:

``C[i, j] = max_{e <= j} ( entry(e) - gap·(j - e) )``,
``entry(e) = max( C[i-1, e-1] + m(a_i, b_e),  C[i-1, e] - gap_up )``.

The scan is evaluated with the decayed-cummax identity
``max_e (entry(e) + g·e) - g·j`` in O(width) NumPy ops, and the
predecessor product (the previous-row cell the optimum entered from)
is tracked with a first-maximum running arg-max, keeping tie-breaking
deterministic and shift-invariant (Lemma 3's requirement).

Band cells are *real subproblems only*: band bounds are clipped to the
table, so every vector entry has at least one finite dependence and
the transformation matrices are non-trivial (§4.5) by construction.
"""

from __future__ import annotations

from abc import abstractmethod

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.semiring.tropical import NEG_INF

__all__ = ["band_bounds", "BandedAlignmentProblem"]


def band_bounds(i: int, m: int, width: int) -> tuple[int, int]:
    """Column range ``[lo, hi]`` of the band at row ``i`` (table has m+1 columns)."""
    return max(0, i - width), min(m, i + width)


class BandedAlignmentProblem(LTDPProblem):
    """Base class: banded edit-style DP with linear penalties as LTDP.

    Subclasses provide the substitution scores and the two linear
    penalties (``gap_up`` for a vertical move consuming a row symbol,
    ``gap_left`` for a horizontal move consuming a column symbol) plus
    the row-0 base case.  Stage ``num_rows + 1`` is a width-1 selector
    moving the answer cell ``C[n, m]`` into the Fig-2 convention slot
    (subproblem 0 of the last stage).
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, *, width: int) -> None:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
            raise ProblemDefinitionError("sequences must be non-empty 1-D arrays")
        if width < 1:
            raise ProblemDefinitionError("band width must be >= 1")
        if abs(len(a) - len(b)) > width:
            raise ProblemDefinitionError(
                f"band width {width} excludes the endpoint "
                f"(|{len(a)} - {len(b)}| > width); widen the band"
            )
        self.a = a
        self.b = b
        self.width = width
        self._n = len(a)
        self._m = len(b)

    # -- to be provided by concrete problems ------------------------------
    @property
    @abstractmethod
    def gap_up(self) -> float:
        """Penalty magnitude of a vertical move (consume a row symbol)."""

    @property
    @abstractmethod
    def gap_left(self) -> float:
        """Penalty magnitude of a horizontal move (consume a column symbol)."""

    @abstractmethod
    def match_score(self, i: int, col: np.ndarray) -> np.ndarray:
        """Substitution scores of row symbol ``a[i-1]`` against columns ``col``.

        ``col`` holds 1-based column indices (aligning ``b[col-1]``).
        """

    @abstractmethod
    def row0_value(self, j: np.ndarray) -> np.ndarray:
        """Base-case values ``C[0, j]`` for column indices ``j``."""

    # -- LTDP interface ----------------------------------------------------
    @property
    def num_stages(self) -> int:
        return self._n + 1  # rows 1..n plus the selector stage

    def stage_width(self, i: int) -> int:
        if not 0 <= i <= self.num_stages:
            raise ProblemDefinitionError(f"stage {i} out of range")
        if i == self.num_stages:
            return 1
        lo, hi = band_bounds(i, self._m, self.width)
        return hi - lo + 1

    def initial_vector(self) -> np.ndarray:
        lo, hi = band_bounds(0, self._m, self.width)
        return self.row0_value(np.arange(lo, hi + 1)).astype(np.float64)

    def _selector_source(self) -> int:
        lo, _ = band_bounds(self._n, self._m, self.width)
        return self._m - lo

    def _entry_values(
        self, i: int, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Per-cell best value entering row ``i`` directly from row ``i-1``.

        Returns ``(entry, entry_pred, lo)`` where ``entry_pred`` indexes
        the previous stage vector.  Tie between diagonal and up breaks
        to the diagonal (the lower previous-stage index).
        """
        lo_p, hi_p = band_bounds(i - 1, self._m, self.width)
        lo, hi = band_bounds(i, self._m, self.width)
        W = hi - lo + 1
        if v.shape != (hi_p - lo_p + 1,):
            raise ProblemDefinitionError(
                f"stage {i} input has shape {v.shape}, expected ({hi_p - lo_p + 1},)"
            )
        entry = np.full(W, NEG_INF)
        epred = np.zeros(W, dtype=np.int64)
        # Up moves: previous-row cell in the same column.
        s = max(lo, lo_p)
        e = min(hi, hi_p)
        if s <= e:
            sl = slice(s - lo, e - lo + 1)
            entry[sl] = v[s - lo_p : e - lo_p + 1] - self.gap_up
            epred[sl] = np.arange(s - lo_p, e - lo_p + 1)
        # Diagonal moves: previous-row cell one column to the left.
        ds = max(lo, lo_p + 1, 1)
        de = min(hi, hi_p + 1)
        if ds <= de:
            cols = np.arange(ds, de + 1)
            diag = v[ds - 1 - lo_p : de - lo_p] + self.match_score(i, cols)
            sl = slice(ds - lo, de - lo + 1)
            better = diag >= entry[sl]
            entry[sl] = np.where(better, diag, entry[sl])
            epred[sl] = np.where(better, cols - 1 - lo_p, epred[sl])
        return entry, epred, lo

    def _scan(
        self, entry: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Within-row left-move closure: values and winning entry positions."""
        W = entry.shape[0]
        g = self.gap_left
        idx = np.arange(W, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            t = entry + g * idx
            cm = np.maximum.accumulate(t)
            newmax = np.empty(W, dtype=bool)
            newmax[0] = True
            newmax[1:] = t[1:] > cm[:-1]
            estar = np.maximum.accumulate(
                np.where(newmax, np.arange(W), -1)
            )
            vals = cm - g * idx
        return vals, estar

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            return np.array([v[self._selector_source()]])
        entry, _, _ = self._entry_values(i, v)
        vals, _ = self._scan(entry)
        return vals

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            k = self._selector_source()
            return np.array([v[k]]), np.array([k], dtype=np.int64)
        entry, epred, _ = self._entry_values(i, v)
        vals, estar = self._scan(entry)
        return vals, epred[estar]

    def stage_cost(self, i: int) -> float:
        return float(self.stage_width(i))

    def edge_weight(self, i: int, j: int, k: int) -> float:
        """Best within-row path weight from prev cell ``k`` into cell ``j``.

        Enter the row at column ``c_in + 1`` (diagonal) or ``c_in``
        (up), then take left moves to column ``c_out``.
        """
        self.check_stage_index(i)
        if i == self.num_stages:
            return 0.0 if k == self._selector_source() else NEG_INF
        lo_p, hi_p = band_bounds(i - 1, self._m, self.width)
        lo, hi = band_bounds(i, self._m, self.width)
        c_in = lo_p + k
        c_out = lo + j
        if not (0 <= k <= hi_p - lo_p and 0 <= j <= hi - lo):
            return NEG_INF
        best = NEG_INF
        g = self.gap_left
        if c_out >= c_in and c_out >= lo:  # up then (c_out - c_in) lefts
            lefts = c_out - c_in
            # All intermediate columns must be in the current band.
            if c_in >= lo:
                best = -self.gap_up - g * lefts
        if c_out >= c_in + 1 and c_in + 1 >= lo and c_in + 1 >= 1:
            m = float(self.match_score(i, np.array([c_in + 1]))[0])
            cand = m - g * (c_out - c_in - 1)
            best = max(best, cand)
        return best

    # ------------------------------------------------------------------
    def cell_value_path(self, solution: LTDPSolution) -> list[tuple[int, int]]:
        """The traced path as ``(row, column)`` table coordinates.

        Entry ``r`` of the result is the band cell the optimum passed
        through in row ``r`` (the cell from which the path moved to the
        next row; within-row left-move runs are collapsed, see
        :mod:`repro.problems.alignment.traceback` for full expansion).
        """
        coords = []
        for i in range(0, self._n + 1):
            lo, _ = band_bounds(i, self._m, self.width)
            coords.append((i, lo + int(solution.path[i])))
        return coords
