"""BLOSUM62 protein substitution scoring.

The paper's Smith–Waterman benchmark aligns DNA, but the algorithm and
Farrar's kernel are routinely used for proteins; shipping the standard
BLOSUM62 matrix makes :class:`SmithWatermanProblem` directly usable
for protein search.  Values are the canonical Henikoff & Henikoff
half-bit scores as distributed with BLAST.
"""

from __future__ import annotations

import numpy as np

from repro.problems.alignment.scoring import ScoringScheme

__all__ = ["AMINO_ACIDS", "BLOSUM62", "blosum62_scoring", "encode_protein"]

#: Canonical 20-letter amino-acid alphabet (BLAST column order).
AMINO_ACIDS = "ARNDCQEGHILKMFPSTWYV"

# fmt: off
_BLOSUM62_ROWS = [
    #  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0],  # A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3],  # R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3],  # N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3],  # D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1],  # C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2],  # Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2],  # E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3],  # G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3],  # H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3],  # I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1],  # L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2],  # K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1],  # M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1],  # F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2],  # P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2],  # S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0],  # T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3],  # W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1],  # Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4],  # V
]
# fmt: on

#: The BLOSUM62 matrix as a (20, 20) float array in ``AMINO_ACIDS`` order.
BLOSUM62 = np.array(_BLOSUM62_ROWS, dtype=np.float64)


def encode_protein(seq: str) -> np.ndarray:
    """Encode an amino-acid string to int codes in ``AMINO_ACIDS`` order."""
    lookup = {aa: i for i, aa in enumerate(AMINO_ACIDS)}
    try:
        return np.array([lookup[aa] for aa in seq.upper()], dtype=np.int64)
    except KeyError as exc:
        raise ValueError(f"unknown amino acid {exc.args[0]!r}") from exc


def blosum62_scoring(
    *, gap_open: float = 11.0, gap_extend: float = 1.0
) -> ScoringScheme:
    """BLOSUM62 with BLAST's default affine gap penalties (11/1)."""
    return ScoringScheme(
        gap_open=gap_open, gap_extend=gap_extend, substitution=BLOSUM62
    )
