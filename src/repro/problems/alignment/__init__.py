"""Sequence alignment as LTDP: LCS, Needleman–Wunsch, Smith–Waterman.

Two stage formulations from paper §5 / Figure 6 are implemented:

- LCS and Needleman–Wunsch use **row stages** (Fig 6(b)) over a fixed
  band around the diagonal, with the within-row dependence unrolled
  into the stage transform (a tropical prefix scan);
- Smith–Waterman uses **column stages** over the full query, with
  affine gap penalties, a *zero-anchor* subproblem linearizing the
  ``max(…, 0)`` restart, and a *running-maximum* subproblem carrying
  the answer (both §5 tricks).

Baselines: :mod:`repro.problems.alignment.bitparallel` (Hyyrö
bit-vector LCS) and :mod:`repro.problems.alignment.striped`
(Farrar-style vectorized SW scorer).  Reference O(nm) DPs for tests
live in :mod:`repro.problems.alignment.reference`.
"""

from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.alignment.edit_distance import EditDistanceProblem
from repro.problems.alignment.bitparallel import lcs_length_bitparallel
from repro.problems.alignment.striped import sw_score_striped
from repro.problems.alignment.hirschberg import hirschberg_alignment
from repro.problems.alignment.blosum import BLOSUM62, blosum62_scoring, encode_protein
from repro.problems.alignment.reference import (
    lcs_length_reference,
    nw_score_reference,
    sw_score_reference,
)

__all__ = [
    "ScoringScheme",
    "LCSProblem",
    "NeedlemanWunschProblem",
    "SmithWatermanProblem",
    "EditDistanceProblem",
    "lcs_length_bitparallel",
    "sw_score_striped",
    "hirschberg_alignment",
    "BLOSUM62",
    "blosum62_scoring",
    "encode_protein",
    "lcs_length_reference",
    "nw_score_reference",
    "sw_score_reference",
]
