"""Farrar-style vectorized Smith–Waterman scorer (paper's SW baseline, §6.3.2).

The paper uses Farrar's striped SIMD implementation [8] as both the
sequential baseline and the per-stage black box of the parallel
algorithm.  The essence of Farrar's kernel — compute the column
ignoring the vertical gap state ``F``, then run the *lazy-F* correction
loop until no cell improves — is reproduced here with NumPy lanes
standing in for SSE registers.

``sw_score_striped`` returns the maximal local-alignment score with
affine gaps; it is validated against the O(nm) Gotoh reference and is
the calibration kernel for absolute GCUPS numbers in the Fig 8 bench.
"""

from __future__ import annotations

import numpy as np

from repro.problems.alignment.scoring import ScoringScheme
from repro.semiring.tropical import NEG_INF

__all__ = ["sw_score_striped", "build_query_profile"]


def build_query_profile(
    query: np.ndarray, scoring: ScoringScheme, alphabet_size: int
) -> np.ndarray:
    """``profile[c, i] = score(query[i], c)`` — Farrar's precomputed profile."""
    query = np.asarray(query, dtype=np.int64)
    profile = np.empty((alphabet_size, query.size), dtype=np.float64)
    for c in range(alphabet_size):
        profile[c] = [scoring.score_pair(int(qi), c) for qi in query]
    return profile


def sw_score_striped(
    query: np.ndarray,
    database: np.ndarray,
    scoring: ScoringScheme | None = None,
    *,
    alphabet_size: int | None = None,
) -> float:
    """Max local-alignment score (affine gaps) via the lazy-F column sweep."""
    scoring = scoring if scoring is not None else ScoringScheme()
    query = np.asarray(query, dtype=np.int64)
    database = np.asarray(database, dtype=np.int64)
    q = query.size
    if q == 0 or database.size == 0:
        return 0.0
    if alphabet_size is None:
        alphabet_size = int(max(query.max(), database.max())) + 1
    profile = build_query_profile(query, scoring, alphabet_size)
    go, ge = scoring.gap_open, scoring.gap_extend

    h_prev = np.zeros(q)  # H column j-1
    e_prev = np.full(q, NEG_INF)  # E column j-1
    best = 0.0
    for sym in database.tolist():
        scores = profile[sym]
        # E: database-side gap, depends only on the previous column.
        e = np.maximum(h_prev - go, e_prev - ge)
        # H ignoring the vertical gap state F.
        diag = np.concatenate(([0.0], h_prev[:-1]))
        h = np.maximum(np.maximum(diag + scores, e), 0.0)
        # Lazy-F correction loop (Farrar): propagate vertical gaps only
        # where they still improve a cell; terminates because scores are
        # bounded and each pass must strictly improve something.
        f = np.concatenate(([NEG_INF], h[:-1] - go))
        while np.any(f > h):
            h = np.maximum(h, f)
            f = np.concatenate(([NEG_INF], f[:-1] - ge))
        best = max(best, float(h.max()))
        h_prev, e_prev = h, e
    return best
