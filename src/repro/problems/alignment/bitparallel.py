"""Hyyrö's bit-parallel LCS-length kernel (paper's LCS baseline, §6.3.4).

The paper's sequential LCS baseline is "the fastest known single-core
algorithm for LCS that exploits bit-parallelism to parallelize the
computation within a column" (references [6, 13]).  Row ``i`` of the
DP table is encoded as an ``n``-bit word ``V`` whose *zero* bits mark
the positions where the column value increments; one word-level
update per database symbol processes the whole column:

``U = V & M[b_j]``;  ``V ← ((V + U) | (V − U)) & mask``

Python's arbitrary-precision integers act as a single machine word of
any width, so this is the same algorithm with the machine-word loop
folded into bignum arithmetic.  The LCS length is the number of zero
bits at the end.

Symbols are canonicalized to Python ints before mask lookup: the mask
table is a hash map keyed by symbol, and raw ``.tolist()`` values from
mixed dtypes (``np.float64`` NaN payloads, object arrays) either hash
inconsistently or compare unequal to their integer twins, silently
turning matches into mismatches.  Non-integer alphabets are rejected
loudly instead.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = [
    "build_match_masks",
    "canonical_symbols",
    "lcs_length_bitparallel",
    "lcs_row_lengths_bitparallel",
]


def canonical_symbols(seq, what: str = "sequence") -> list[int]:
    """Return ``seq`` as a list of Python ints, or raise loudly.

    Accepts bool and any integer dtype directly, and float arrays whose
    values are all finite integers (canonicalized so ``2.0`` and ``2``
    build identical masks).  Everything else — NaN, fractional floats,
    object/str arrays — raises instead of silently hashing to a mask
    miss.
    """
    arr = np.asarray(seq)
    if arr.dtype == np.bool_ or np.issubdtype(arr.dtype, np.integer):
        return np.asarray(arr, dtype=np.int64).tolist()
    if np.issubdtype(arr.dtype, np.floating):
        if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr != np.floor(arr))):
            raise ValueError(
                f"bit-parallel LCS requires an integer symbol alphabet; "
                f"{what} has non-integral float values"
            )
        return arr.astype(np.int64).tolist()
    raise TypeError(
        f"bit-parallel LCS requires an integer symbol alphabet; "
        f"{what} has dtype {arr.dtype!r}"
    )


def build_match_masks(a) -> dict[int, int]:
    """Per-symbol bitmasks over ``a``: bit ``i`` set iff ``a[i] == symbol``."""
    masks: dict[int, int] = defaultdict(int)
    for i, sym in enumerate(canonical_symbols(a, what="mask sequence")):
        masks[sym] |= 1 << i
    return dict(masks)


def lcs_length_bitparallel(a, b) -> int:
    """LCS length of two symbol sequences via the bit-vector recurrence."""
    a = np.asarray(a)
    b = np.asarray(b)
    n = int(a.size)
    if n == 0 or b.size == 0:
        return 0
    masks = build_match_masks(a)
    mask_all = (1 << n) - 1
    v = mask_all
    for sym in canonical_symbols(b, what="query sequence"):
        m = masks.get(sym, 0)
        u = v & m
        v = ((v + u) | (v - u)) & mask_all
    # Zero bits of V count the matches accumulated along the column.
    return n - bin(v).count("1")


def lcs_row_lengths_bitparallel(a, b) -> np.ndarray:
    """``out[j]`` = LCS length of ``a`` and ``b[:j]`` (prefix sweep).

    Used by tests to compare entire columns against the DP table, not
    just the final score.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    n = int(a.size)
    out = np.zeros(b.size + 1, dtype=np.int64)
    if n == 0:
        return out
    masks = build_match_masks(a)
    mask_all = (1 << n) - 1
    v = mask_all
    for j, sym in enumerate(canonical_symbols(b, what="query sequence"), start=1):
        m = masks.get(sym, 0)
        u = v & m
        v = ((v + u) | (v - u)) & mask_all
        out[j] = n - bin(v).count("1")
    return out
