"""Hyyrö's bit-parallel LCS-length kernel (paper's LCS baseline, §6.3.4).

The paper's sequential LCS baseline is "the fastest known single-core
algorithm for LCS that exploits bit-parallelism to parallelize the
computation within a column" (references [6, 13]).  Row ``i`` of the
DP table is encoded as an ``n``-bit word ``V`` whose *zero* bits mark
the positions where the column value increments; one word-level
update per database symbol processes the whole column:

``U = V & M[b_j]``;  ``V ← ((V + U) | (V − U)) & mask``

Python's arbitrary-precision integers act as a single machine word of
any width, so this is the same algorithm with the machine-word loop
folded into bignum arithmetic.  The LCS length is the number of zero
bits at the end.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["build_match_masks", "lcs_length_bitparallel", "lcs_row_lengths_bitparallel"]


def build_match_masks(a) -> dict[int, int]:
    """Per-symbol bitmasks over ``a``: bit ``i`` set iff ``a[i] == symbol``."""
    masks: dict[int, int] = defaultdict(int)
    for i, sym in enumerate(np.asarray(a).tolist()):
        masks[sym] |= 1 << i
    return dict(masks)


def lcs_length_bitparallel(a, b) -> int:
    """LCS length of two symbol sequences via the bit-vector recurrence."""
    a = np.asarray(a)
    b = np.asarray(b)
    n = int(a.size)
    if n == 0 or b.size == 0:
        return 0
    masks = build_match_masks(a)
    mask_all = (1 << n) - 1
    v = mask_all
    for sym in b.tolist():
        m = masks.get(sym, 0)
        u = v & m
        v = ((v + u) | (v - u)) & mask_all
    # Zero bits of V count the matches accumulated along the column.
    return n - bin(v).count("1")


def lcs_row_lengths_bitparallel(a, b) -> np.ndarray:
    """``out[j]`` = LCS length of ``a`` and ``b[:j]`` (prefix sweep).

    Used by tests to compare entire columns against the DP table, not
    just the final score.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    n = int(a.size)
    out = np.zeros(b.size + 1, dtype=np.int64)
    if n == 0:
        return out
    masks = build_match_masks(a)
    mask_all = (1 << n) - 1
    v = mask_all
    for j, sym in enumerate(b.tolist(), start=1):
        m = masks.get(sym, 0)
        u = v & m
        v = ((v + u) | (v - u)) & mask_all
        out[j] = n - bin(v).count("1")
    return out
