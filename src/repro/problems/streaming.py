"""Streaming Viterbi decoding with finite traceback depth.

Hardware decoders cannot buffer a whole packet; they emit the bit
``D`` stages behind the current front by following survivor pointers,
relying on all survivors having **merged** within depth ``D`` (the
classic rule of thumb D ≈ 5K).  Survivor merging is the traceback-side
twin of rank convergence: when every state's survivor path passes
through one common state ``D`` stages back, the *backward* partial
product has rank 1 (paper Lemma 5) and the emitted bit is exact
regardless of which survivor is followed.

:class:`StreamingViterbiDecoder` implements the technique over the
same trellis tables as :class:`~repro.problems.convolutional.
ViterbiDecoderProblem`, so tests can compare the truncated stream
decode against full (packet) maximum-likelihood decoding and measure
how the merge depth relates to the Table-1 convergence steps.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProblemDefinitionError, StreamAccountingError
from repro.problems.convolutional import ConvolutionalCode
from repro.semiring.tropical import NEG_INF

__all__ = ["StreamingViterbiDecoder"]


class StreamingViterbiDecoder:
    """Fixed-latency Viterbi decoding of a hard-decision bit stream.

    Parameters
    ----------
    code:
        The convolutional code.
    traceback_depth:
        Output latency ``D`` in stages.  The folklore choice ``5·K``
        makes truncation loss negligible; tiny depths visibly degrade
        BER (tested).
    """

    def __init__(self, code: ConvolutionalCode, *, traceback_depth: int | None = None) -> None:
        self.code = code
        self.depth = (
            traceback_depth
            if traceback_depth is not None
            else 5 * code.constraint_length
        )
        if self.depth < 1:
            raise ProblemDefinitionError("traceback depth must be >= 1")
        tables = code._tables
        self._pred = tables["pred"]  # (S, 2)
        self._out = tables["out"]  # (S, 2, rate)

    # ------------------------------------------------------------------
    def decode(self, received: np.ndarray) -> np.ndarray:
        """Decode a received bit stream; returns one bit per symbol stage.

        The stream is assumed to start in state 0 (like a terminated
        packet's head); the final ``depth`` stages are flushed from the
        best end state, so the output has the same length as the input
        symbol count.
        """
        received = np.asarray(received, dtype=np.uint8)
        rate = self.code.rate_denominator
        if received.size == 0 or received.size % rate != 0:
            raise ProblemDefinitionError(
                f"received length {received.size} is not a positive multiple "
                f"of the code rate denominator {rate}"
            )
        symbols = received.reshape(-1, rate)
        n = symbols.shape[0]
        S = self.code.num_states
        kbits = self.code.constraint_length - 2

        metrics = np.full(S, NEG_INF)
        metrics[0] = 0.0
        # Ring buffer of survivor choices: survivors[t % depth][s] = the
        # predecessor state of s at stage t.
        survivors = np.empty((min(self.depth, n), S), dtype=np.int64)
        out_bits = np.empty(n, dtype=np.uint8)
        emitted = 0

        for t in range(n):
            sym = symbols[t]
            branch = (self._out == sym[np.newaxis, np.newaxis, :]).sum(
                axis=2, dtype=np.float64
            )
            cand = metrics[self._pred] + branch
            choice = np.argmax(cand, axis=1)
            rows = np.arange(S)
            metrics = cand[rows, choice]
            survivors[t % survivors.shape[0]] = self._pred[rows, choice]
            # Metric renormalization (legal: uniform offsets are invisible
            # to every later comparison — the tropical-scalar invariance).
            metrics -= metrics.max()

            if t >= self.depth:
                # Trace depth stages back from the current best state:
                # walking k steps from state_t yields state_{t-k}, whose
                # MSB is the input bit consumed at stage t-k.
                state = int(np.argmax(metrics))
                for back in range(self.depth):
                    state = int(survivors[(t - back) % survivors.shape[0]][state])
                out_bits[emitted] = (state >> kbits) & 1
                emitted += 1

        # Flush: trace the full remaining tail from the best final state.
        state = int(np.argmax(metrics))
        tail = []
        for back in range(min(self.depth, n)):
            tail.append((state >> kbits) & 1)
            state = int(survivors[(n - 1 - back) % survivors.shape[0]][state])
        for bit in reversed(tail):
            if emitted < n:
                out_bits[emitted] = bit
                emitted += 1
        if emitted != n:
            # A real exception, not ``assert``: the accounting check must
            # survive ``python -O``, and a silent shortfall would return
            # uninitialised bits from np.empty.
            raise StreamAccountingError(
                f"streaming decode emitted {emitted} of {n} bits "
                f"(traceback_depth={self.depth}): main loop emitted "
                f"{max(0, n - self.depth)}, flush covered "
                f"{min(self.depth, n)} — survivor bookkeeping is corrupt"
            )
        return out_bits
