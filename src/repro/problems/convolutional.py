"""Convolutional codes and Viterbi decoding as LTDP.

The paper's headline benchmark (§6.3.1): decode convolution-encoded
packets transmitted over a noisy channel by finding the most likely
input sequence.  The decoder's trellis recurrence

``p[i, s] = max_{s'} ( p[i-1, s'] + branch_metric(s' → s, r_i) )``

is exactly Equation (1) with the stage width equal to the number of
encoder states ``2^(K-1)``.

We implement the four real codes the paper evaluates:

=========  ==  =====  ================================  ======
code       K   rate   generators (octal)                states
=========  ==  =====  ================================  ======
Voyager     7  1/2    171, 133                              64
LTE         7  1/3    133, 171, 165                         64
CDMA IS-95  9  1/2    561, 753                             256
MARS        15 1/6    46321,51271,63667,70535,73277,...  16384
=========  ==  =====  ================================  ======

State convention: the state is the most recent ``K-1`` input bits with
the **newest bit in the most significant position**.  Feeding bit ``b``
into state ``s`` forms the register ``r = (b << (K-1)) | s``; output
bit ``j`` is ``parity(r & g_j)``; the next state is ``r >> 1``.

The per-stage kernel is a vectorized add-compare-select over the two
predecessors of every state — the role Spiral's generated inner loop
plays in the paper (used as a black box by the parallel algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.semiring.tropical import NEG_INF

__all__ = [
    "ConvolutionalCode",
    "ViterbiDecoderProblem",
    "SoftViterbiDecoderProblem",
    "VOYAGER",
    "CDMA_IS95",
    "LTE",
    "MARS",
    "MARS_SCALED",
    "STANDARD_CODES",
]


def _parity_table(bits: int) -> np.ndarray:
    """parity(v) for all v < 2**bits, as uint8 (bits ≤ 16 keeps this small)."""
    v = np.arange(1 << bits, dtype=np.uint32)
    p = v.copy()
    shift = 1
    while shift < bits:
        p ^= p >> shift
        shift <<= 1
    return (p & 1).astype(np.uint8)


@dataclass(frozen=True)
class ConvolutionalCode:
    """A rate-1/n binary convolutional code.

    Parameters
    ----------
    name:
        Identifier used in benchmark output.
    constraint_length:
        K — the encoder register length; ``2^(K-1)`` trellis states.
    generators:
        Octal generator polynomials, each at most K bits.
    """

    name: str
    constraint_length: int
    generators: tuple[int, ...]

    def __post_init__(self) -> None:
        K = self.constraint_length
        if K < 2 or K > 16:
            raise ProblemDefinitionError(f"constraint length {K} out of range 2..16")
        if not self.generators:
            raise ProblemDefinitionError("at least one generator polynomial required")
        for g in self.generators:
            if not 0 < g < (1 << K):
                raise ProblemDefinitionError(
                    f"generator {g:o} (octal) does not fit constraint length {K}"
                )

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return 1 << (self.constraint_length - 1)

    @property
    def rate_denominator(self) -> int:
        """Output bits per input bit (the n of rate 1/n)."""
        return len(self.generators)

    @cached_property
    def _tables(self) -> dict[str, np.ndarray]:
        """Trellis tables, all indexed by next-state ``ns``.

        ``pred[ns, b0]`` — the two predecessor states;
        ``out[ns, b0, g]`` — encoder output bit ``g`` on the transition
        ``pred[ns, b0] → ns`` (``b0`` is the low bit of the predecessor's
        register shifted out... concretely the two incoming branches).
        """
        K = self.constraint_length
        ns = np.arange(self.num_states, dtype=np.int64)
        # ns = register >> 1 with register = (b << (K-1)) | s_prev, so the
        # registers mapping to ns are r0 = ns << 1 and r1 = (ns << 1) | 1.
        parity = _parity_table(K)
        regs = np.stack([ns << 1, (ns << 1) | 1], axis=1)  # (S, 2)
        pred = regs & (self.num_states - 1)  # s_prev = r & (2^(K-1) - 1)
        input_bit = (regs >> (K - 1)) & 1  # the bit that was fed in
        out = np.empty((self.num_states, 2, self.rate_denominator), dtype=np.uint8)
        for g_idx, g in enumerate(self.generators):
            out[:, :, g_idx] = parity[regs & g]
        return {
            "pred": pred.astype(np.int64),
            "input_bit": input_bit.astype(np.uint8),
            "out": out,
        }

    # ------------------------------------------------------------------
    def encode(self, bits: np.ndarray, *, terminate: bool = True) -> np.ndarray:
        """Encode a bit array; with ``terminate`` append K-1 zero flush bits.

        Returns the output bit array of length
        ``rate_denominator * (len(bits) [+ K-1])``.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("bits must be 1-D")
        if np.any(bits > 1):
            raise ValueError("bits must be 0/1")
        K = self.constraint_length
        stream = np.concatenate([bits, np.zeros(K - 1, dtype=np.uint8)]) if terminate else bits
        out = np.empty(stream.size * self.rate_denominator, dtype=np.uint8)
        state = 0
        pos = 0
        for b in stream:
            reg = (int(b) << (K - 1)) | state
            for g in self.generators:
                out[pos] = bin(reg & g).count("1") & 1
                pos += 1
            state = reg >> 1
        return out

    def input_bit_of_state(self, state: int) -> int:
        """The input bit that produced ``state`` (its most significant bit)."""
        return (state >> (self.constraint_length - 2)) & 1


#: NASA Voyager code: K=7, rate 1/2, generators 171/133 (octal).
VOYAGER = ConvolutionalCode("Voyager", 7, (0o171, 0o133))
#: 3GPP LTE convolutional code: K=7, rate 1/3, generators 133/171/165.
LTE = ConvolutionalCode("LTE", 7, (0o133, 0o171, 0o165))
#: CDMA IS-95: K=9, rate 1/2, generators 561/753.
CDMA_IS95 = ConvolutionalCode("CDMA", 9, (0o561, 0o753))
#: NASA Mars Pathfinder / Cassini code: K=15, rate 1/6.
MARS = ConvolutionalCode(
    "MARS", 15, (0o46321, 0o51271, 0o63667, 0o70535, 0o73277, 0o76513)
)
#: A scaled stand-in for MARS (K=11, 1024 states) for time-boxed benchmark
#: sweeps; same qualitative behaviour (big width ⇒ slow convergence).
MARS_SCALED = ConvolutionalCode(
    "MARS-scaled", 11, (0o3345, 0o3613, 0o2671, 0o3175, 0o2371, 0o3661)
)

STANDARD_CODES: dict[str, ConvolutionalCode] = {
    c.name: c for c in (VOYAGER, LTE, CDMA_IS95, MARS, MARS_SCALED)
}


class ViterbiDecoderProblem(LTDPProblem):
    """Maximum-likelihood decoding of one received packet as LTDP.

    Parameters
    ----------
    code:
        The convolutional code.
    received:
        Hard-decision received bits, length ``rate × num_stages``.
        (For terminated packets ``num_stages = payload + K - 1``.)
    terminated:
        When True (the transmitter flushed the register), the decoder
        pins both endpoints to state 0: the initial vector is the unit
        vector at state 0 and the answer is ``p_n[0]`` — already in the
        Fig 2 solution-convention slot, no extra stage needed.  When
        False, a final max-selection stage (paper §5 Viterbi note) is
        appended, making ``num_stages = len(received)/rate + 1``.

    The branch metric is the Hamming *agreement* (matching bit count)
    between the received symbol and the branch's encoder output —
    maximizing it maximizes likelihood on a binary symmetric channel
    with error probability < 1/2.
    """

    def __init__(
        self,
        code: ConvolutionalCode,
        received: np.ndarray,
        *,
        terminated: bool = True,
    ) -> None:
        received = np.asarray(received, dtype=np.uint8)
        if received.ndim != 1:
            raise ProblemDefinitionError("received bits must be 1-D")
        rate = code.rate_denominator
        if received.size == 0 or received.size % rate != 0:
            raise ProblemDefinitionError(
                f"received length {received.size} is not a positive multiple "
                f"of the code rate denominator {rate}"
            )
        if np.any(received > 1):
            raise ProblemDefinitionError("received bits must be 0/1 (hard decision)")
        self.code = code
        self.terminated = terminated
        self._symbols = received.reshape(-1, rate)
        tables = code._tables
        self._pred = tables["pred"]  # (S, 2)
        self._input_bit = tables["input_bit"]  # (S, 2)
        self._out = tables["out"]  # (S, 2, rate)
        self._num_symbol_stages = self._symbols.shape[0]

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return self._num_symbol_stages + (0 if self.terminated else 1)

    def stage_width(self, i: int) -> int:
        if not 0 <= i <= self.num_stages:
            raise ProblemDefinitionError(f"stage {i} out of range")
        if not self.terminated and i == self.num_stages:
            return 1
        return self.code.num_states

    def initial_vector(self) -> np.ndarray:
        v = np.full(self.code.num_states, NEG_INF)
        v[0] = 0.0  # the encoder starts in the all-zero state
        return v

    def _branch_metrics(self, i: int) -> np.ndarray:
        """(S, 2) agreement counts of each branch with received symbol i (1-based)."""
        symbol = self._symbols[i - 1]  # (rate,)
        agreements = self._out == symbol[np.newaxis, np.newaxis, :]
        return agreements.sum(axis=2, dtype=np.float64)

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if not self.terminated and i == self.num_stages:
            return np.array([np.max(v)])
        metrics = self._branch_metrics(i)
        with np.errstate(invalid="ignore"):
            cand = v[self._pred] + metrics  # (S, 2)
            return np.max(cand, axis=1)

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if not self.terminated and i == self.num_stages:
            return np.array([np.max(v)]), np.array([int(np.argmax(v))], dtype=np.int64)
        metrics = self._branch_metrics(i)
        with np.errstate(invalid="ignore"):
            cand = v[self._pred] + metrics  # (S, 2)
            choice = np.argmax(cand, axis=1)  # ties -> branch 0 (lower pred? see below)
        rows = np.arange(self.code.num_states)
        vals = cand[rows, choice]
        pred = self._pred[rows, choice]
        # Deterministic tie-break on the *predecessor index*: argmax picked
        # branch 0 on ties, but branch order is register order, and
        # pred[ns,0] < pred[ns,1] always (r0 = ns<<1 < r1), so branch 0 is
        # also the lower predecessor index.  (asserted in tests)
        return vals, pred.astype(np.int64)

    def stage_cost(self, i: int) -> float:
        # Two adds + one compare per state: charge 2 "cells" per state,
        # matching the ACS operation count of a radix-2 trellis stage.
        if not self.terminated and i == self.num_stages:
            return float(self.code.num_states)
        return 2.0 * self.code.num_states

    def edge_weight(self, i: int, j: int, k: int) -> float:
        """Branch metric of transition state ``k`` → state ``j`` at stage ``i``."""
        self.check_stage_index(i)
        if not self.terminated and i == self.num_stages:
            return 0.0
        for b in (0, 1):
            if self._pred[j, b] == k:
                symbol = self._symbols[i - 1]
                return float(np.sum(self._out[j, b] == symbol))
        return NEG_INF

    # ------------------------------------------------------------------
    def extract(self, solution: LTDPSolution) -> np.ndarray:
        """Decode the state path into the transmitted payload bits.

        The input bit at symbol stage ``i`` is the MSB of the state at
        stage ``i``; for terminated packets the trailing ``K-1`` flush
        bits are stripped.
        """
        path = solution.path
        n_sym = self._num_symbol_stages
        states = path[1 : n_sym + 1]
        bits = (states >> (self.code.constraint_length - 2)) & 1
        if self.terminated:
            bits = bits[: n_sym - (self.code.constraint_length - 1)]
        return bits.astype(np.uint8)


class SoftViterbiDecoderProblem(ViterbiDecoderProblem):
    """Soft-decision ML decoding from (quantized) log-likelihood ratios.

    The branch metric is the LLR correlation with the branch's expected
    BPSK symbols, ``Σ_j (1 - 2·out_j) · llr_j`` — maximizing it
    maximizes likelihood on an AWGN channel.  With integer LLRs
    (:func:`repro.problems.channel.quantize_llr`) the tropical
    arithmetic stays exact, so the parallel fix-up's parallelism test
    remains an exact comparison.

    Parameters
    ----------
    code:
        The convolutional code.
    llrs:
        Per-transmitted-bit LLRs, length ``rate × num_symbol_stages``;
        positive means "bit 0 more likely" (BPSK 0 → +1 convention).
    terminated:
        As in :class:`ViterbiDecoderProblem`.
    """

    def __init__(
        self,
        code: ConvolutionalCode,
        llrs: np.ndarray,
        *,
        terminated: bool = True,
    ) -> None:
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.ndim != 1:
            raise ProblemDefinitionError("llrs must be 1-D")
        rate = code.rate_denominator
        if llrs.size == 0 or llrs.size % rate != 0:
            raise ProblemDefinitionError(
                f"llr length {llrs.size} is not a positive multiple of the "
                f"code rate denominator {rate}"
            )
        if not np.isfinite(llrs).all():
            raise ProblemDefinitionError("llrs must be finite")
        # Initialize the hard-decision base with thresholded bits so all
        # shared bookkeeping (tables, shapes, extract) is in place, then
        # swap in the soft symbols.
        hard = (llrs < 0.0).astype(np.uint8)
        super().__init__(code, hard, terminated=terminated)
        self._llrs = llrs.reshape(-1, rate)
        # Branch symbols in BPSK convention: out bit 0 → +1, 1 → -1.
        self._branch_symbols = 1.0 - 2.0 * self._out.astype(np.float64)

    def _branch_metrics(self, i: int) -> np.ndarray:
        """(S, 2) LLR correlations with received soft symbols of stage ``i``."""
        llr = self._llrs[i - 1]  # (rate,)
        return self._branch_symbols @ llr

    def edge_weight(self, i: int, j: int, k: int) -> float:
        self.check_stage_index(i)
        if not self.terminated and i == self.num_stages:
            return 0.0
        for b in (0, 1):
            if self._pred[j, b] == k:
                return float(self._branch_symbols[j, b] @ self._llrs[i - 1])
        return NEG_INF


def puncture(encoded: np.ndarray, pattern: np.ndarray) -> np.ndarray:
    """Drop encoder output bits according to a periodic puncturing pattern.

    ``pattern`` is a boolean array (True = transmit) tiled over the
    output stream — the standard rate-matching mechanism (e.g. turning
    a rate-1/2 mother code into rate-2/3).  Returns only the
    transmitted bits.
    """
    encoded = np.asarray(encoded, dtype=np.uint8)
    pattern = np.asarray(pattern, dtype=bool)
    if pattern.ndim != 1 or pattern.size == 0:
        raise ValueError("pattern must be a non-empty 1-D boolean array")
    if not pattern.any():
        raise ValueError("pattern must transmit at least one bit per period")
    reps = -(-encoded.size // pattern.size)
    mask = np.tile(pattern, reps)[: encoded.size]
    return encoded[mask]


class PuncturedViterbiDecoderProblem(ViterbiDecoderProblem):
    """Hard-decision decoding of a punctured (rate-matched) packet.

    Punctured positions are treated as erasures: they contribute zero
    branch metric for either bit value, so the recurrence stays exactly
    Equation (1) with per-stage constants.  The decoder reconstructs
    the full symbol layout internally from the puncturing pattern.

    Parameters
    ----------
    code:
        The mother convolutional code.
    received:
        The *transmitted-positions-only* hard-decision bits, in stream
        order (what :func:`puncture` produced, after the channel).
    pattern:
        The same periodic pattern used at the transmitter.
    terminated:
        As in :class:`ViterbiDecoderProblem`.
    """

    def __init__(
        self,
        code: ConvolutionalCode,
        received: np.ndarray,
        pattern: np.ndarray,
        *,
        terminated: bool = True,
    ) -> None:
        received = np.asarray(received, dtype=np.uint8)
        pattern = np.asarray(pattern, dtype=bool)
        if pattern.ndim != 1 or pattern.size == 0 or not pattern.any():
            raise ProblemDefinitionError(
                "pattern must be a non-empty 1-D boolean array with a "
                "transmitted position"
            )
        rate = code.rate_denominator
        # Find the full stream length whose kept-position count matches.
        kept_per_period = int(pattern.sum())
        if received.size == 0 or received.size % kept_per_period != 0:
            raise ProblemDefinitionError(
                f"received length {received.size} is not a multiple of the "
                f"pattern's {kept_per_period} transmitted bits per period"
            )
        full_len = (received.size // kept_per_period) * pattern.size
        if full_len % rate != 0:
            raise ProblemDefinitionError(
                "pattern period and code rate are incompatible: the "
                f"reconstructed stream length {full_len} is not a multiple "
                f"of {rate}"
            )
        mask = np.tile(pattern, full_len // pattern.size)
        full = np.zeros(full_len, dtype=np.uint8)
        full[mask] = received
        super().__init__(code, full, terminated=terminated)
        self._mask = mask.reshape(-1, rate)
        self.pattern = pattern

    def _branch_metrics(self, i: int) -> np.ndarray:
        symbol = self._symbols[i - 1]
        valid = self._mask[i - 1]
        agreements = (self._out == symbol[np.newaxis, np.newaxis, :]) & valid
        return agreements.sum(axis=2, dtype=np.float64)

    def edge_weight(self, i: int, j: int, k: int) -> float:
        self.check_stage_index(i)
        if not self.terminated and i == self.num_stages:
            return 0.0
        for b in (0, 1):
            if self._pred[j, b] == k:
                symbol = self._symbols[i - 1]
                valid = self._mask[i - 1]
                return float(np.sum((self._out[j, b] == symbol) & valid))
        return NEG_INF
