"""Discrete hidden Markov models and Viterbi inference as LTDP.

Paper Fig 1(a): ``p[i, j] = max_k p[i-1, k] · t[k, j]`` becomes linear
in the tropical semiring after taking logarithms (§5).  The stage
matrix for observation ``o_i`` is
``A_i[j, k] = log t[k, j] + log e[j, o_i]`` and the final
max-over-states is realized by an extra all-zeros stage, exactly as
the paper prescribes ("stage n+1 is obtained from multiplying a matrix
with 0 in all entries with stage n").

Floating-point note: log-probabilities make tropical-parallelism
checks inexact under recomputation from an offset vector, so this
problem sets ``parallel_tol = 1e-9``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.semiring.tropical import matvec_with_pred, tropical_matvec

__all__ = ["DiscreteHMM", "HMMViterbiProblem"]


class DiscreteHMM:
    """A discrete HMM: transition, emission and initial distributions.

    Parameters
    ----------
    transition:
        ``(S, S)``; ``transition[k, j]`` = P(state j at t+1 | state k at t).
    emission:
        ``(S, O)``; ``emission[j, o]`` = P(observe o | state j).
    initial:
        ``(S,)`` initial state distribution.
    """

    def __init__(self, transition, emission, initial) -> None:
        self.transition = np.asarray(transition, dtype=np.float64)
        self.emission = np.asarray(emission, dtype=np.float64)
        self.initial = np.asarray(initial, dtype=np.float64)
        S = self.transition.shape[0]
        if self.transition.shape != (S, S):
            raise ProblemDefinitionError("transition matrix must be square")
        if self.emission.ndim != 2 or self.emission.shape[0] != S:
            raise ProblemDefinitionError("emission must be (num_states, num_obs)")
        if self.initial.shape != (S,):
            raise ProblemDefinitionError("initial must have one entry per state")
        for name, arr, axis in (
            ("transition", self.transition, 1),
            ("emission", self.emission, 1),
        ):
            sums = arr.sum(axis=axis)
            if not np.allclose(sums, 1.0, atol=1e-8):
                raise ProblemDefinitionError(f"{name} rows must sum to 1")
        if not np.isclose(self.initial.sum(), 1.0, atol=1e-8):
            raise ProblemDefinitionError("initial distribution must sum to 1")
        if np.any(self.transition < 0) or np.any(self.emission < 0) or np.any(
            self.initial < 0
        ):
            raise ProblemDefinitionError("probabilities must be non-negative")

    @property
    def num_states(self) -> int:
        return self.transition.shape[0]

    @property
    def num_observables(self) -> int:
        return self.emission.shape[1]

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_states: int,
        num_observables: int,
        rng: np.random.Generator,
        *,
        peakedness: float = 1.0,
    ) -> "DiscreteHMM":
        """A random HMM; higher ``peakedness`` concentrates the rows.

        Peaked (near-deterministic) models have strongly dominant paths
        and therefore converge in few stages (§4.8's "overwhelmingly
        better" intuition); flat models converge slowly.  Dirichlet
        rows with concentration ``1/peakedness``.
        """
        if peakedness <= 0:
            raise ValueError("peakedness must be positive")
        alpha = 1.0 / peakedness
        t = rng.dirichlet(np.full(num_states, alpha), size=num_states)
        e = rng.dirichlet(np.full(num_observables, alpha), size=num_states)
        pi = rng.dirichlet(np.full(num_states, alpha))
        return cls(t, e, pi)

    def sample(self, length: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``(states, observations)`` of the given length."""
        if length < 1:
            raise ValueError("length must be >= 1")
        states = np.empty(length, dtype=np.int64)
        obs = np.empty(length, dtype=np.int64)
        s = rng.choice(self.num_states, p=self.initial)
        for t in range(length):
            states[t] = s
            obs[t] = rng.choice(self.num_observables, p=self.emission[s])
            s = rng.choice(self.num_states, p=self.transition[s])
        return states, obs

    def viterbi_problem(self, observations: np.ndarray) -> "HMMViterbiProblem":
        return HMMViterbiProblem(self, observations)

    def log_likelihood(self, observations: np.ndarray) -> float:
        """Total observation log-likelihood via the forward algorithm.

        This is the same recursion as Viterbi with the tropical ⊕ = max
        replaced by the log-prob semiring's ⊕ = logsumexp (see
        :class:`repro.semiring.base.LogProbSemiring`) — summing over
        state paths instead of maximizing.  Always ≥ the Viterbi
        (single best path) log-probability.
        """
        from scipy.special import logsumexp

        obs = np.asarray(observations, dtype=np.int64)
        if obs.ndim != 1 or obs.size == 0:
            raise ProblemDefinitionError("observations must be a non-empty 1-D array")
        if np.any(obs < 0) or np.any(obs >= self.num_observables):
            raise ProblemDefinitionError("observation symbol out of range")
        with np.errstate(divide="ignore"):
            log_t = np.log(self.transition)
            log_e = np.log(self.emission)
            alpha = np.log(self.initial) + log_e[:, obs[0]]
        for o in obs[1:]:
            alpha = logsumexp(alpha[:, np.newaxis] + log_t, axis=0) + log_e[:, o]
        return float(logsumexp(alpha))


class HMMViterbiProblem(LTDPProblem):
    """Most-likely state sequence for one observation sequence, as LTDP."""

    parallel_tol = 1e-9

    def __init__(self, hmm: DiscreteHMM, observations: np.ndarray) -> None:
        obs = np.asarray(observations, dtype=np.int64)
        if obs.ndim != 1 or obs.size == 0:
            raise ProblemDefinitionError("observations must be a non-empty 1-D array")
        if np.any(obs < 0) or np.any(obs >= hmm.num_observables):
            raise ProblemDefinitionError("observation symbol out of range")
        self.hmm = hmm
        self.observations = obs
        with np.errstate(divide="ignore"):
            self._log_t = np.log(hmm.transition)  # [k, j]
            self._log_e = np.log(hmm.emission)  # [j, o]
            self._log_pi = np.log(hmm.initial)
        # A_i[j, k] = log t[k, j] + log e[j, o_i]; precompute the transposed
        # transition once, add the emission column per stage.
        self._log_t_T = self._log_t.T.copy()  # [j, k]
        if not np.isfinite(self._log_t_T).any(axis=1).all():
            raise ProblemDefinitionError(
                "some state is unreachable (a transition-matrix column is all "
                "zero); remove trivial subproblems first (§4.5)"
            )

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        # One stage per observation after the first (the first observation
        # is folded into s_0), plus the final max-selection stage.
        return self.observations.size

    def stage_width(self, i: int) -> int:
        if not 0 <= i <= self.num_stages:
            raise ProblemDefinitionError(f"stage {i} out of range")
        return 1 if i == self.num_stages else self.hmm.num_states

    def initial_vector(self) -> np.ndarray:
        return self._log_pi + self._log_e[:, self.observations[0]]

    def _stage_matrix(self, i: int) -> np.ndarray:
        return self._log_t_T + self._log_e[:, self.observations[i]][:, np.newaxis]

    def apply_stage(self, i: int, v: np.ndarray) -> np.ndarray:
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            return np.array([np.max(v)])
        return tropical_matvec(self._stage_matrix(i), v)

    def apply_stage_with_pred(self, i, v):
        self.check_stage_index(i)
        v = np.asarray(v, dtype=np.float64)
        if i == self.num_stages:
            return np.array([np.max(v)]), np.array([int(np.argmax(v))], dtype=np.int64)
        return matvec_with_pred(self._stage_matrix(i), v)

    def stage_matrix(self, i: int) -> np.ndarray:
        self.check_stage_index(i)
        if i == self.num_stages:
            return np.zeros((1, self.hmm.num_states))
        return self._stage_matrix(i)

    def stage_cost(self, i: int) -> float:
        S = self.hmm.num_states
        return float(S) if i == self.num_stages else float(S * S)

    def edge_weight(self, i: int, j: int, k: int) -> float:
        self.check_stage_index(i)
        if i == self.num_stages:
            return 0.0
        return float(self._log_t[k, j] + self._log_e[j, self.observations[i]])

    # ------------------------------------------------------------------
    def extract(self, solution: LTDPSolution) -> np.ndarray:
        """The most likely state sequence (length = number of observations)."""
        # path[0..n-1] are HMM states; path[n] is the selector stage's 0.
        return solution.path[: self.num_stages].astype(np.int64)
