"""Tropical-semiring linear algebra.

This subpackage provides the algebraic substrate of the paper:

- :mod:`repro.semiring.base` — abstract :class:`Semiring` plus the
  concrete max-plus, min-plus, boolean and log-Viterbi instances;
- :mod:`repro.semiring.tropical` — fast vectorized max-plus kernels
  (matrix-vector, matrix-matrix, predecessor/arg-max products);
- :mod:`repro.semiring.vector` — tropical vector predicates
  (parallelism, all-non-zero, normalization);
- :mod:`repro.semiring.matrix` — a :class:`TropicalMatrix` convenience
  wrapper with ``@``-style composition and rank queries;
- :mod:`repro.semiring.rank` — tropical factor-rank bounds, exact
  rank-1 / small-rank decision procedures and rank-1 factorization;
- :mod:`repro.semiring.properties` — executable semiring-law checkers
  used by the property-based test-suite.
"""

from repro.semiring.base import (
    Semiring,
    MaxPlus,
    MinPlus,
    BooleanSemiring,
    LogProbSemiring,
    MAX_PLUS,
    MIN_PLUS,
    BOOLEAN,
    LOG_PROB,
)
from repro.semiring.tropical import (
    NEG_INF,
    tropical_matvec,
    tropical_matmat,
    tropical_vecmat,
    predecessor_product,
    matvec_with_pred,
    tropical_closure,
    tropical_matrix_power,
)
from repro.semiring.vector import (
    is_all_nonzero,
    is_zero_vector,
    are_parallel,
    parallel_offset,
    normalize,
    random_nonzero_vector,
)
from repro.semiring.matrix import TropicalMatrix, identity_matrix, zero_matrix
from repro.semiring.rank import (
    is_rank_one,
    rank_one_factorization,
    factor_rank_upper_bound,
    tropical_rank_exact,
    column_space_dimension,
)
from repro.semiring.spectral import (
    max_cycle_mean,
    tropical_eigenvector,
    critical_nodes,
    is_irreducible,
)

__all__ = [
    "Semiring",
    "MaxPlus",
    "MinPlus",
    "BooleanSemiring",
    "LogProbSemiring",
    "MAX_PLUS",
    "MIN_PLUS",
    "BOOLEAN",
    "LOG_PROB",
    "NEG_INF",
    "tropical_matvec",
    "tropical_matmat",
    "tropical_vecmat",
    "predecessor_product",
    "matvec_with_pred",
    "tropical_closure",
    "tropical_matrix_power",
    "is_all_nonzero",
    "is_zero_vector",
    "are_parallel",
    "parallel_offset",
    "normalize",
    "random_nonzero_vector",
    "TropicalMatrix",
    "identity_matrix",
    "zero_matrix",
    "is_rank_one",
    "rank_one_factorization",
    "factor_rank_upper_bound",
    "tropical_rank_exact",
    "column_space_dimension",
    "max_cycle_mean",
    "tropical_eigenvector",
    "critical_nodes",
    "is_irreducible",
]
