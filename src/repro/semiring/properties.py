"""Executable semiring-law checkers.

These functions verify, for concrete element triples, the axioms of
paper §2 ("Semirings").  They are used by the hypothesis-driven tests
in ``tests/semiring/test_properties.py`` but live in the library so
that downstream users defining their own semirings can validate them
(e.g. before plugging a custom scoring scheme into the LTDP machinery).

Each checker returns ``True``/``False`` rather than asserting, so they
compose into both tests and runtime validation.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.semiring.base import Semiring

__all__ = [
    "check_additive_associativity",
    "check_additive_commutativity",
    "check_additive_identity",
    "check_multiplicative_associativity",
    "check_multiplicative_identity",
    "check_left_distributivity",
    "check_right_distributivity",
    "check_annihilation",
    "check_all_laws",
    "law_violations",
]

_REL_TOL = 1e-9


def _eq(a: float, b: float) -> bool:
    if a == b:
        return True
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=1e-12)


def check_additive_associativity(s: Semiring, x: float, y: float, z: float) -> bool:
    """``(x ⊕ y) ⊕ z == x ⊕ (y ⊕ z)``."""
    return _eq(s.add(s.add(x, y), z), s.add(x, s.add(y, z)))


def check_additive_commutativity(s: Semiring, x: float, y: float) -> bool:
    """``x ⊕ y == y ⊕ x``."""
    return _eq(s.add(x, y), s.add(y, x))


def check_additive_identity(s: Semiring, x: float) -> bool:
    """``x ⊕ 0̄ == x``."""
    return _eq(s.add(x, s.zero), x)


def check_multiplicative_associativity(
    s: Semiring, x: float, y: float, z: float
) -> bool:
    """``(x ⊗ y) ⊗ z == x ⊗ (y ⊗ z)``."""
    return _eq(s.mul(s.mul(x, y), z), s.mul(x, s.mul(y, z)))


def check_multiplicative_identity(s: Semiring, x: float) -> bool:
    """``x ⊗ 1̄ == 1̄ ⊗ x == x``."""
    return _eq(s.mul(x, s.one), x) and _eq(s.mul(s.one, x), x)


def check_left_distributivity(s: Semiring, x: float, y: float, z: float) -> bool:
    """``x ⊗ (y ⊕ z) == (x ⊗ y) ⊕ (x ⊗ z)``."""
    return _eq(s.mul(x, s.add(y, z)), s.add(s.mul(x, y), s.mul(x, z)))


def check_right_distributivity(s: Semiring, x: float, y: float, z: float) -> bool:
    """``(y ⊕ z) ⊗ x == (y ⊗ x) ⊕ (z ⊗ x)``."""
    return _eq(s.mul(s.add(y, z), x), s.add(s.mul(y, x), s.mul(z, x)))


def check_annihilation(s: Semiring, x: float) -> bool:
    """``x ⊗ 0̄ == 0̄ ⊗ x == 0̄``."""
    return _eq(s.mul(x, s.zero), s.zero) and _eq(s.mul(s.zero, x), s.zero)


def law_violations(s: Semiring, elements: Sequence[float]) -> list[str]:
    """Exhaustively check all laws over triples of ``elements``; list failures."""
    failures: list[str] = []
    for x in elements:
        if not check_additive_identity(s, x):
            failures.append(f"additive identity fails at {x}")
        if not check_multiplicative_identity(s, x):
            failures.append(f"multiplicative identity fails at {x}")
        if not check_annihilation(s, x):
            failures.append(f"annihilation fails at {x}")
        for y in elements:
            if not check_additive_commutativity(s, x, y):
                failures.append(f"additive commutativity fails at ({x}, {y})")
            for z in elements:
                if not check_additive_associativity(s, x, y, z):
                    failures.append(f"additive associativity fails at ({x},{y},{z})")
                if not check_multiplicative_associativity(s, x, y, z):
                    failures.append(
                        f"multiplicative associativity fails at ({x},{y},{z})"
                    )
                if not check_left_distributivity(s, x, y, z):
                    failures.append(f"left distributivity fails at ({x},{y},{z})")
                if not check_right_distributivity(s, x, y, z):
                    failures.append(f"right distributivity fails at ({x},{y},{z})")
    return failures


def check_all_laws(s: Semiring, elements: Iterable[float]) -> bool:
    """True iff every semiring law holds over all triples from ``elements``."""
    return not law_violations(s, list(elements))
