"""Tropical matrix rank: exact rank-1 decision, bounds, and small exact ranks.

The paper defines rank as *factor rank* (Barvinok rank): the smallest
``r`` with ``M = C ⨂ R`` for ``C`` of width ``r`` (paper §2).  Deciding
factor rank is NP-hard in general for r ≥ 3 — but the algorithm only
ever needs:

* an **exact rank-1 test** (`is_rank_one`, `rank_one_factorization`):
  a matrix is rank 1 iff it is a tropical outer product ``c ⨂ rᵀ``, and
  this is decidable in O(nm);
* **monotonicity** ``rank(A ⨂ B) ≤ min(rank A, rank B)`` (paper Eq. 3),
  which we validate in tests through upper bounds;
* an **upper bound** (`factor_rank_upper_bound`) given by the number of
  distinct tropical column directions — used by the convergence
  measurement harness to report how fast products collapse toward a
  line (paper §6.1 / Table 1 and the "converges to small rank much
  faster than to rank 1" observation of §4.7).

For completeness we also implement the *tropical rank* of
Develin–Santos–Sturmfels (paper reference [7]) — the size of the
largest tropically non-singular square minor — exactly, for small
matrices.  All rank notions coincide at rank 1, which is the only case
the parallel algorithm's correctness relies on.
"""

from __future__ import annotations

from itertools import combinations, permutations

import numpy as np

from repro.exceptions import DimensionError
from repro.semiring.tropical import NEG_INF, as_tropical_matrix
from repro.semiring.vector import are_parallel, normalize

__all__ = [
    "is_rank_one",
    "rank_one_factorization",
    "factor_rank_upper_bound",
    "column_space_dimension",
    "is_tropically_singular",
    "tropical_rank_exact",
]


def rank_one_factorization(
    A: np.ndarray, *, tol: float = 0.0
) -> tuple[np.ndarray, np.ndarray] | None:
    """Return ``(c, r)`` with ``A = c ⨂ rᵀ`` if ``A`` has factor rank ≤ 1, else None.

    Structure: ``A[i, j] = c[i] + r[j]``, with ``A[i, j] = -inf`` exactly
    when ``c[i] = -inf`` or ``r[j] = -inf``.  Hence the finite entries of
    a rank-≤1 matrix form a combinatorial rectangle (rows are all-zero or
    share one finite column set) whose values decompose additively.
    """
    A = as_tropical_matrix(A)
    n, m = A.shape
    finite = np.isfinite(A)
    zero_rows = ~finite.any(axis=1)
    zero_cols = ~finite.any(axis=0)
    live_rows = np.where(~zero_rows)[0]
    live_cols = np.where(~zero_cols)[0]
    if live_rows.size == 0 or live_cols.size == 0:
        # The all-zero matrix: conventionally rank ≤ 1 (it is (-inf) ⨂ rᵀ).
        return (
            np.full(n, NEG_INF),
            np.full(m, 0.0),
        )
    sub_finite = finite[np.ix_(live_rows, live_cols)]
    if not sub_finite.all():
        return None  # finite support is not a rectangle
    sub = A[np.ix_(live_rows, live_cols)]
    # Every live row must be parallel to the first live row.
    base = sub[0]
    offsets = sub - base[np.newaxis, :]
    spread = np.max(offsets, axis=1) - np.min(offsets, axis=1)
    if np.any(spread > tol):
        return None
    c = np.full(n, NEG_INF)
    r = np.full(m, NEG_INF)
    c[live_rows] = offsets[:, 0]
    r[live_cols] = base
    return c, r


def is_rank_one(A: np.ndarray, *, tol: float = 0.0) -> bool:
    """Exact test for factor rank ≤ 1 (see :func:`rank_one_factorization`)."""
    return rank_one_factorization(A, tol=tol) is not None


def column_space_dimension(A: np.ndarray, *, tol: float = 0.0) -> int:
    """Number of distinct tropical directions among non-zero columns.

    This counts equivalence classes of columns under tropical
    parallelism.  It upper-bounds factor rank: grouping the columns of
    each class into one outer product gives an explicit factorization
    ``A = ⨁_d c_d ⨂ r_dᵀ``.
    """
    A = as_tropical_matrix(A)
    classes: list[np.ndarray] = []
    for j in range(A.shape[1]):
        col = A[:, j]
        if not np.isfinite(col).any():
            continue  # tropical zero columns don't contribute a direction
        rep = normalize(col)
        if not any(are_parallel(rep, seen, tol=tol) for seen in classes):
            classes.append(rep)
    return len(classes)


def factor_rank_upper_bound(A: np.ndarray, *, tol: float = 0.0) -> int:
    """Cheap upper bound on the factor (Barvinok) rank of ``A``.

    ``min`` of the distinct-direction counts of the columns and of the
    rows (the bound is symmetric under transposition).  Exact at 0 and 1.
    """
    A = as_tropical_matrix(A)
    cols = column_space_dimension(A, tol=tol)
    rows = column_space_dimension(A.T, tol=tol)
    return min(cols, rows)


def is_tropically_singular(A: np.ndarray) -> bool:
    """Develin–Santos–Sturmfels singularity test for a square matrix.

    A square matrix is *tropically singular* when the maximum in the
    tropical permanent ``max_σ Σ_i A[i, σ(i)]`` is attained by at least
    two permutations (or is ``-inf``).  Exponential in ``n`` — intended
    for the small matrices used in tests and rank studies.
    """
    A = as_tropical_matrix(A)
    n, m = A.shape
    if n != m:
        raise DimensionError("singularity is defined for square matrices")
    if n > 8:
        raise ValueError("exact singularity test limited to n <= 8")
    best = NEG_INF
    count = 0
    for sigma in permutations(range(n)):
        total = 0.0
        ok = True
        for i, j in enumerate(sigma):
            a = A[i, j]
            if a == NEG_INF:
                ok = False
                break
            total += a
        if not ok:
            continue
        if total > best:
            best, count = total, 1
        elif total == best:
            count += 1
    return best == NEG_INF or count >= 2


def tropical_rank_exact(A: np.ndarray, *, max_size: int = 6) -> int:
    """Exact tropical rank: largest ``k`` with a tropically non-singular k×k minor.

    Tropical rank lower-bounds factor rank (reference [7] of the paper),
    and all notions agree at ≤ 1.  Cost grows combinatorially; matrices
    larger than ``max_size`` in either dimension are rejected.
    """
    A = as_tropical_matrix(A)
    n, m = A.shape
    if max(n, m) > max_size:
        raise ValueError(
            f"exact tropical rank limited to {max_size}x{max_size}; "
            "use factor_rank_upper_bound for larger matrices"
        )
    if not np.isfinite(A).any():
        return 0
    for k in range(min(n, m), 1, -1):
        for rows in combinations(range(n), k):
            sub_rows = A[list(rows), :]
            for cols in combinations(range(m), k):
                minor = sub_rows[:, list(cols)]
                if not is_tropically_singular(minor):
                    return k
    return 1
