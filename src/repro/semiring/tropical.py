"""Vectorized max-plus (tropical) linear-algebra kernels.

These are the hot-path operations of the whole library.  Conventions:

* Vectors and matrices are plain ``numpy.float64`` arrays.
* The tropical zero 0̄ is ``-numpy.inf`` (:data:`NEG_INF`); the tropical
  one 1̄ is ``0.0``.
* ``+inf`` and ``nan`` are not legal tropical values; kernels guard the
  single dangerous case ``-inf + inf = nan`` by construction (``-inf``
  annihilates) and validation helpers reject illegal inputs.
* ``arg max`` ties break to the **lowest index**, matching the paper's
  assumption that "ties in arg max are broken deterministically".

The dense kernels use broadcasting: ``A[i, k] + v[k]`` is an ``(n, m)``
intermediate, reduced with ``max``/``argmax`` along axis 1.  This is the
NumPy-idiomatic replacement for the C inner loops of the paper's
baselines and is what the cost model (``repro.machine.cost_model``)
calibrates against.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError

__all__ = [
    "NEG_INF",
    "as_tropical_vector",
    "as_tropical_matrix",
    "tropical_matvec",
    "tropical_vecmat",
    "tropical_matmat",
    "predecessor_product",
    "matvec_with_pred",
    "tropical_matrix_power",
    "tropical_closure",
    "tropical_inner",
    "tropical_outer",
]

#: The tropical additive identity 0̄.
NEG_INF: float = float("-inf")


def as_tropical_vector(v, *, copy: bool = False) -> np.ndarray:
    """Validate and coerce ``v`` to a 1-D float64 tropical vector.

    Rejects ``nan`` and ``+inf`` entries, which are not elements of the
    tropical domain ``R ∪ {-inf}``.
    """
    arr = np.array(v, dtype=np.float64, copy=copy) if copy else np.asarray(
        v, dtype=np.float64
    )
    if arr.ndim != 1:
        raise DimensionError(f"expected 1-D vector, got shape {arr.shape}")
    if np.isnan(arr).any() or (arr == np.inf).any():
        raise ValueError("tropical vectors may not contain nan or +inf")
    return arr


def as_tropical_matrix(A, *, copy: bool = False) -> np.ndarray:
    """Validate and coerce ``A`` to a 2-D float64 tropical matrix."""
    arr = np.array(A, dtype=np.float64, copy=copy) if copy else np.asarray(
        A, dtype=np.float64
    )
    if arr.ndim != 2:
        raise DimensionError(f"expected 2-D matrix, got shape {arr.shape}")
    if np.isnan(arr).any() or (arr == np.inf).any():
        raise ValueError("tropical matrices may not contain nan or +inf")
    return arr


def _check_matvec_shapes(A: np.ndarray, v: np.ndarray) -> None:
    if A.ndim != 2:
        raise DimensionError(f"matrix operand must be 2-D, got shape {A.shape}")
    if v.ndim != 1:
        raise DimensionError(f"vector operand must be 1-D, got shape {v.shape}")
    if A.shape[1] != v.shape[0]:
        raise DimensionError(
            f"matrix columns ({A.shape[1]}) != vector length ({v.shape[0]})"
        )


def tropical_matvec(A: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Tropical matrix-vector product ``(A ⨂ v)[i] = max_k A[i,k] + v[k]``.

    This realizes the LTDP stage recurrence, paper Equation (1)/(2).
    """
    A = np.asarray(A, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    _check_matvec_shapes(A, v)
    # Broadcasting A + v gives -inf + -inf = -inf (fine) and never
    # -inf + inf because +inf is excluded from the domain.
    with np.errstate(invalid="ignore"):
        return np.max(A + v[np.newaxis, :], axis=1)


def tropical_vecmat(v: np.ndarray, A: np.ndarray) -> np.ndarray:
    """Tropical row-vector × matrix product ``(vᵀ ⨂ A)[j] = max_k v[k] + A[k,j]``."""
    A = np.asarray(A, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if A.ndim != 2 or v.ndim != 1 or A.shape[0] != v.shape[0]:
        raise DimensionError(
            f"incompatible shapes for vᵀ⨂A: {v.shape} and {A.shape}"
        )
    with np.errstate(invalid="ignore"):
        return np.max(v[:, np.newaxis] + A, axis=0)


def tropical_matmat(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Tropical matrix-matrix product ``(A ⨂ B)[i,j] = max_k A[i,k] + B[k,j]``.

    Used only by rank analysis and tests; the parallel algorithm itself
    never multiplies matrices (that is its key advantage, §4.1).
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise DimensionError(
            f"incompatible shapes for A⨂B: {A.shape} and {B.shape}"
        )
    # (n, m, 1) + (1, m, p) -> reduce over axis 1.  For large operands fall
    # back to a row-blocked loop to bound the broadcast intermediate.
    n, m = A.shape
    p = B.shape[1]
    out = np.empty((n, p), dtype=np.float64)
    # Keep the temporary under ~64 MB.
    block = max(1, int(8e6 // max(1, m * p)))
    with np.errstate(invalid="ignore"):
        for start in range(0, n, block):
            stop = min(n, start + block)
            out[start:stop] = np.max(
                A[start:stop, :, np.newaxis] + B[np.newaxis, :, :], axis=1
            )
    return out


def predecessor_product(A: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Predecessor product ``(A ⋆ v)[j] = argmax_k (v[k] + A[j,k])`` (paper §3).

    Ties break to the lowest ``k``.  Rows whose maximum is ``-inf``
    (possible only for trivial matrices) still return index 0; callers
    that care must validate non-triviality separately.
    """
    A = np.asarray(A, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    _check_matvec_shapes(A, v)
    with np.errstate(invalid="ignore"):
        return np.argmax(A + v[np.newaxis, :], axis=1).astype(np.int64)


def matvec_with_pred(A: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fused ``(A ⨂ v, A ⋆ v)`` — one broadcast, two reductions.

    The forward phase needs both the new stage vector and the
    predecessor indices (paper Fig 2 lines 5-6); fusing avoids
    materializing the ``(n, m)`` sum twice.
    """
    A = np.asarray(A, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    _check_matvec_shapes(A, v)
    with np.errstate(invalid="ignore"):
        sums = A + v[np.newaxis, :]
        pred = np.argmax(sums, axis=1).astype(np.int64)
        vals = sums[np.arange(sums.shape[0]), pred]
    return vals, pred


def tropical_matrix_power(A: np.ndarray, k: int) -> np.ndarray:
    """``A ⨂ A ⨂ … ⨂ A`` (k factors) by binary exponentiation; ``k=0`` gives I."""
    A = as_tropical_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise DimensionError("matrix power requires a square matrix")
    if k < 0:
        raise ValueError("tropical matrices have no multiplicative inverse")
    n = A.shape[0]
    result = np.full((n, n), NEG_INF)
    np.fill_diagonal(result, 0.0)
    base = A.copy()
    while k > 0:
        if k & 1:
            result = tropical_matmat(result, base)
        k >>= 1
        if k:
            base = tropical_matmat(base, base)
    return result


def tropical_closure(A: np.ndarray, *, max_iter: int | None = None) -> np.ndarray:
    """Kleene closure ``A* = I ⊕ A ⊕ A² ⊕ …`` for matrices without positive cycles.

    In max-plus terms this is the all-pairs *longest* path matrix; it
    converges within ``n`` squarings when the underlying graph has no
    positive-weight cycle, else entries diverge and a ``ValueError`` is
    raised.  Used by the graph view of LTDP (§4.8) and by tests that
    cross-check stage products against :mod:`networkx` path lengths.
    """
    A = as_tropical_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise DimensionError("closure requires a square matrix")
    n = A.shape[0]
    eye = np.full((n, n), NEG_INF)
    np.fill_diagonal(eye, 0.0)
    current = np.maximum(eye, A)
    limit = max_iter if max_iter is not None else max(1, n).bit_length() + 1
    for _ in range(limit):
        nxt = np.maximum(eye, tropical_matmat(current, current))
        if np.array_equal(nxt, current, equal_nan=False):
            return current
        current = nxt
    raise ValueError(
        "tropical closure did not converge: the graph has a positive-weight cycle"
    )


def tropical_inner(u: np.ndarray, v: np.ndarray) -> float:
    """Tropical inner product ``uᵀ ⨂ v = max_k u[k] + v[k]``."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if u.shape != v.shape or u.ndim != 1:
        raise DimensionError(f"incompatible shapes {u.shape} and {v.shape}")
    with np.errstate(invalid="ignore"):
        return float(np.max(u + v))


def tropical_outer(c: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Tropical outer product ``(c ⨂ rᵀ)[i,j] = c[i] + r[j]`` — always rank ≤ 1."""
    c = np.asarray(c, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    if c.ndim != 1 or r.ndim != 1:
        raise DimensionError("outer product requires 1-D operands")
    with np.errstate(invalid="ignore"):
        return c[:, np.newaxis] + r[np.newaxis, :]
