"""Tropical spectral theory: max cycle mean and eigenvectors.

The tropical eigenvalue of a square matrix ``A`` is the **maximum
cycle mean** ``λ(A) = max_C (weight(C) / length(C))`` over cycles of
the weighted digraph of ``A``.  It governs the asymptotics of matrix
powers — ``(A^k)[i, j] ≈ k·λ + O(1)`` for nodes on/reaching a critical
cycle — which is the algebraic backdrop of rank convergence: powers of
an irreducible matrix with a *unique* critical cycle collapse toward
the rank-1 outer product of its tropical eigenvectors.

Implemented here:

- :func:`max_cycle_mean` — Karp's O(n·m) dynamic-programming algorithm;
- :func:`tropical_eigenvector` — a λ-normalized eigenvector via the
  Kleene star of ``A − λ`` (classic max-plus spectral construction);
- :func:`critical_nodes` — nodes on some critical (mean-λ) cycle;
- :func:`is_irreducible` — strong connectivity of the support digraph.

These are used by the rank-convergence analysis tests and make the
semiring layer a self-contained max-plus linear-algebra library.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.semiring.tropical import (
    NEG_INF,
    as_tropical_matrix,
    tropical_matvec,
)

__all__ = [
    "max_cycle_mean",
    "tropical_eigenvector",
    "critical_nodes",
    "is_irreducible",
]


def _check_square(A: np.ndarray) -> np.ndarray:
    A = as_tropical_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise DimensionError("spectral functions require a square matrix")
    return A


def max_cycle_mean(A: np.ndarray) -> float:
    """Karp's algorithm for the maximum cycle mean of ``A``'s digraph.

    Edge ``k → j`` has weight ``A[j, k]`` (matching the matvec
    orientation used throughout).  Returns ``-inf`` when the digraph is
    acyclic.

    Karp: with ``D_k[v]`` = best weight of a length-``k`` walk from any
    start to ``v``,  ``λ = max_v min_{0≤k<n} (D_n[v] − D_k[v]) / (n−k)``.
    """
    A = _check_square(A)
    n = A.shape[0]
    # D[k, v]: best length-k walk weight ending at v, uniform 0 start.
    D = np.full((n + 1, n), NEG_INF)
    D[0, :] = 0.0
    for k in range(1, n + 1):
        D[k] = tropical_matvec(A, D[k - 1])
    best = NEG_INF
    with np.errstate(invalid="ignore"):
        for v in range(n):
            if D[n, v] == NEG_INF:
                continue
            ratios = [
                (D[n, v] - D[k, v]) / (n - k)
                for k in range(n)
                if D[k, v] != NEG_INF
            ]
            if ratios:
                best = max(best, min(ratios))
    return float(best)


def is_irreducible(A: np.ndarray) -> bool:
    """True when the support digraph of ``A`` is strongly connected."""
    A = _check_square(A)
    n = A.shape[0]
    support = np.isfinite(A)

    def reachable(start: int, adj: np.ndarray) -> np.ndarray:
        seen = np.zeros(n, dtype=bool)
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            for v in np.where(adj[:, u])[0]:  # edges u -> v are adj[v, u]
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return seen

    return bool(reachable(0, support).all() and reachable(0, support.T).all())


def _lambda_normalized_star(A: np.ndarray, lam: float) -> np.ndarray:
    """``(A − λ)* = I ⊕ B ⊕ B² ⊕ … ⊕ B^(n-1)`` with ``B = A − λ``.

    Well-defined because B's maximum cycle mean is 0 (no positive
    cycles), so walks longer than n never improve.
    """
    n = A.shape[0]
    B = A.copy()
    finite = np.isfinite(B)
    B[finite] -= lam
    star = np.full((n, n), NEG_INF)
    np.fill_diagonal(star, 0.0)
    power = star.copy()
    for _ in range(n - 1):
        # power ← B ⨂ power, star ← star ⊕ power
        with np.errstate(invalid="ignore"):
            power = np.max(
                B[:, :, np.newaxis] + power[np.newaxis, :, :], axis=1
            )
        star = np.maximum(star, power)
    return star


def critical_nodes(A: np.ndarray, *, tol: float = 1e-9) -> list[int]:
    """Nodes lying on a cycle whose mean equals the maximum cycle mean.

    A node ``v`` is critical iff ``(A − λ)*`` admits a zero-weight
    closed walk through ``v``, i.e. ``((A−λ)* ⨂ (A−λ)*)[v, v] = 0`` —
    equivalently the star's ``[v, v]`` entry stays 0 while some
    λ-normalized cycle through ``v`` exists.  We detect it as
    ``B⁺[v, v] == 0`` with ``B⁺ = B ⨂ B*``.
    """
    A = _check_square(A)
    lam = max_cycle_mean(A)
    if lam == NEG_INF:
        return []
    B = A.copy()
    finite = np.isfinite(B)
    B[finite] -= lam
    star = _lambda_normalized_star(A, lam)
    with np.errstate(invalid="ignore"):
        plus = np.max(B[:, :, np.newaxis] + star[np.newaxis, :, :], axis=1)
    return [int(v) for v in range(A.shape[0]) if abs(plus[v, v]) <= tol]


def tropical_eigenvector(A: np.ndarray, *, tol: float = 1e-9) -> np.ndarray:
    """A tropical eigenvector: ``A ⨂ v = λ ⊗ v`` with λ the max cycle mean.

    Constructed as a column of ``(A − λ)*`` at a critical node — the
    standard max-plus spectral theory result.  Requires at least one
    cycle; for irreducible ``A`` the eigenvector is finite everywhere.
    """
    A = _check_square(A)
    lam = max_cycle_mean(A)
    if lam == NEG_INF:
        raise ValueError("acyclic matrix has no tropical eigenvalue")
    crit = critical_nodes(A, tol=tol)
    if not crit:
        raise ValueError("no critical node found (numerical tolerance too tight?)")
    star = _lambda_normalized_star(A, lam)
    return star[:, crit[0]]
