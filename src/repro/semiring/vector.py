"""Tropical vector predicates: parallelism, all-non-zero, normalization.

Tropical parallelism (paper §2) is the heart of the parallel algorithm's
convergence test: two vectors are parallel iff they differ by a constant
offset on their (identical) finite support.  The fix-up loop of Fig 4
exits as soon as the recomputed stage vector is parallel to the stored
one (line 21), and Lemma 3 guarantees the traceback cannot tell the
difference.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError
from repro.semiring.tropical import NEG_INF, as_tropical_vector

__all__ = [
    "is_all_nonzero",
    "is_zero_vector",
    "are_parallel",
    "parallel_offset",
    "normalize",
    "random_nonzero_vector",
]


def is_all_nonzero(v: np.ndarray) -> bool:
    """True when no entry of ``v`` is the tropical zero ``-inf`` (§4.5)."""
    v = np.asarray(v, dtype=np.float64)
    return bool(np.all(np.isfinite(v)))


def is_zero_vector(v: np.ndarray) -> bool:
    """True when every entry of ``v`` is ``-inf`` (the tropical zero vector)."""
    v = np.asarray(v, dtype=np.float64)
    return bool(np.all(v == NEG_INF))


def are_parallel(u: np.ndarray, v: np.ndarray, *, tol: float = 0.0) -> bool:
    """Tropical parallelism test: ``u ∥ v`` iff ``u ⊗ x = v ⊗ y`` for scalars x, y.

    Equivalently (for non-zero vectors): the ``-inf`` masks coincide and
    ``u - v`` is constant across the finite support.  Two all-zero
    vectors are parallel (both lie on the degenerate "line").

    Parameters
    ----------
    u, v:
        Tropical vectors of equal length.
    tol:
        Absolute tolerance on offset constancy.  The paper's integral
        problems (LCS, NW, Viterbi branch metrics) need ``tol=0``;
        floating-point log-probability instances may need a small
        tolerance.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if u.shape != v.shape or u.ndim != 1:
        raise DimensionError(f"incompatible shapes {u.shape} and {v.shape}")
    finite_u = np.isfinite(u)
    finite_v = np.isfinite(v)
    if not np.array_equal(finite_u, finite_v):
        return False
    if not finite_u.any():
        return True  # both are the zero vector
    diff = u[finite_u] - v[finite_v]
    if tol == 0.0:
        return bool(np.all(diff == diff[0]))
    return bool(np.max(diff) - np.min(diff) <= tol)


def parallel_offset(u: np.ndarray, v: np.ndarray, *, tol: float = 0.0) -> float:
    """The constant ``c`` with ``u = v ⊗ c`` (elementwise ``u = v + c``).

    Raises ``ValueError`` when the vectors are not parallel or are both
    zero vectors (offset undefined).
    """
    if not are_parallel(u, v, tol=tol):
        raise ValueError("vectors are not tropically parallel")
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    finite = np.isfinite(u)
    if not finite.any():
        raise ValueError("offset between zero vectors is undefined")
    diffs = u[finite] - v[finite]
    return float(np.median(diffs)) if tol else float(diffs[0])


def normalize(v: np.ndarray) -> np.ndarray:
    """Canonical representative of ``v``'s tropical direction.

    Subtracts the maximum finite entry, so the result has max 0.  Two
    vectors are parallel iff their normalizations are equal (on the
    nose), which gives the test-suite a convenient canonical form.
    Zero vectors normalize to themselves.
    """
    v = as_tropical_vector(v, copy=True)
    finite = np.isfinite(v)
    if not finite.any():
        return v
    v[finite] -= np.max(v[finite])
    return v


def random_nonzero_vector(
    n: int,
    rng: np.random.Generator,
    *,
    low: float = -10.0,
    high: float = 10.0,
    integer: bool = True,
) -> np.ndarray:
    """A random all-non-zero start vector ``nz`` for paper Fig 4 line 8.

    Every entry is finite, satisfying the all-non-zero requirement of
    §4.5.  By default entries are random *integers* in ``[low, high]``:
    integer-scored problems (Viterbi branch metrics, LCS, NW, SW) then
    stay bit-exact in float64 arithmetic, so the tropical-parallelism
    test of the fix-up loop is an exact comparison, just as in the
    paper's integer SIMD kernels.  ``integer=False`` gives uniform
    floats (offsets then carry ±ulp noise and problems must set a
    ``parallel_tol``).
    """
    if n <= 0:
        raise ValueError(f"vector length must be positive, got {n}")
    if not low < high:
        raise ValueError("require low < high")
    if integer:
        return rng.integers(int(low), int(high) + 1, size=n).astype(np.float64)
    return rng.uniform(low, high, size=n)
