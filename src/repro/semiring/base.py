"""Abstract semirings and the concrete instances used by the paper.

A semiring is a five-tuple ``(D, ⊕, ⊗, 0̄, 1̄)`` (paper §2).  The LTDP
machinery is written against the *tropical* (max, +) semiring, but the
abstraction is kept explicit so that:

* the property-based tests can check the semiring laws hold for every
  instance we ship (see :mod:`repro.semiring.properties`);
* min-plus formulations (shortest path) and the boolean semiring
  (reachability) are available for the graph view of LTDP (§4.8);
* the Viterbi probability-space recurrence can be expressed in the
  log-prob semiring and shown equal to max-plus after the log transform
  (§5, "applying logarithm on both sides").

The scalar operations here are deliberately simple and boxed; all hot
paths use the vectorized kernels in :mod:`repro.semiring.tropical`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Semiring",
    "MaxPlus",
    "MinPlus",
    "BooleanSemiring",
    "LogProbSemiring",
    "MAX_PLUS",
    "MIN_PLUS",
    "BOOLEAN",
    "LOG_PROB",
]


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(D, ⊕, ⊗, zero, one)`` over Python floats.

    Attributes
    ----------
    name:
        Human-readable identifier.
    add:
        The additive operation ⊕ (``max`` for the tropical semiring).
    mul:
        The multiplicative operation ⊗ (``+`` for the tropical semiring).
    zero:
        Additive identity 0̄, which must annihilate under ⊗.
    one:
        Multiplicative identity 1̄.
    """

    name: str
    add: Callable[[float, float], float]
    mul: Callable[[float, float], float]
    zero: float
    one: float

    # ------------------------------------------------------------------
    # Scalar helpers
    # ------------------------------------------------------------------
    def add_many(self, values) -> float:
        """Fold ⊕ over an iterable; returns ``zero`` for an empty one."""
        acc = self.zero
        for v in values:
            acc = self.add(acc, v)
        return acc

    def mul_many(self, values) -> float:
        """Fold ⊗ over an iterable; returns ``one`` for an empty one."""
        acc = self.one
        for v in values:
            acc = self.mul(acc, v)
        return acc

    def is_zero(self, x: float) -> bool:
        """True when ``x`` equals the additive identity."""
        return x == self.zero or (math.isnan(self.zero) and math.isnan(x))

    # ------------------------------------------------------------------
    # Dense (slow, reference) matrix operations.  These exist so tests can
    # validate the fast tropical kernels against a generic implementation.
    # ------------------------------------------------------------------
    def matvec(self, A: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Reference semiring matrix-vector product ``A ⨂ v``."""
        A = np.asarray(A, dtype=float)
        v = np.asarray(v, dtype=float)
        if A.ndim != 2 or v.ndim != 1 or A.shape[1] != v.shape[0]:
            raise ValueError(f"incompatible shapes {A.shape} and {v.shape}")
        out = np.empty(A.shape[0], dtype=float)
        for i in range(A.shape[0]):
            out[i] = self.add_many(
                self.mul(A[i, k], v[k]) for k in range(A.shape[1])
            )
        return out

    def matmat(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Reference semiring matrix-matrix product ``A ⨂ B``."""
        A = np.asarray(A, dtype=float)
        B = np.asarray(B, dtype=float)
        if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
            raise ValueError(f"incompatible shapes {A.shape} and {B.shape}")
        out = np.empty((A.shape[0], B.shape[1]), dtype=float)
        for i in range(A.shape[0]):
            for j in range(B.shape[1]):
                out[i, j] = self.add_many(
                    self.mul(A[i, k], B[k, j]) for k in range(A.shape[1])
                )
        return out


def _max(a: float, b: float) -> float:
    return a if a >= b else b


def _min(a: float, b: float) -> float:
    return a if a <= b else b


def _plus(a: float, b: float) -> float:
    # -inf + inf would be nan under IEEE; in the tropical semiring the
    # annihilator wins.  Neither +inf nor nan is a legal tropical value,
    # so plain addition suffices for legal inputs.
    return a + b


def _bool_or(a: float, b: float) -> float:
    return 1.0 if (a != 0.0 or b != 0.0) else 0.0


def _bool_and(a: float, b: float) -> float:
    return 1.0 if (a != 0.0 and b != 0.0) else 0.0


def _logsumexp2(a: float, b: float) -> float:
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log1p(math.exp(lo - hi))


class MaxPlus(Semiring):
    """The tropical (max, +) semiring of the paper: ``(R ∪ {-inf}, max, +, -inf, 0)``."""

    def __init__(self) -> None:
        super().__init__(name="max-plus", add=_max, mul=_plus, zero=-math.inf, one=0.0)


class MinPlus(Semiring):
    """The dual (min, +) semiring: shortest-path formulation of §4.8."""

    def __init__(self) -> None:
        super().__init__(name="min-plus", add=_min, mul=_plus, zero=math.inf, one=0.0)


class BooleanSemiring(Semiring):
    """``({0,1}, or, and, 0, 1)`` — graph reachability."""

    def __init__(self) -> None:
        super().__init__(name="boolean", add=_bool_or, mul=_bool_and, zero=0.0, one=1.0)


class LogProbSemiring(Semiring):
    """``(R ∪ {-inf}, logaddexp, +, -inf, 0)`` — the sum-product dual of Viterbi.

    Used by the HMM forward algorithm; Viterbi replaces ⊕ = logaddexp
    with ⊕ = max, which is exactly :class:`MaxPlus`.
    """

    def __init__(self) -> None:
        super().__init__(
            name="log-prob", add=_logsumexp2, mul=_plus, zero=-math.inf, one=0.0
        )


#: Module-level singletons — semirings are stateless, share them.
MAX_PLUS = MaxPlus()
MIN_PLUS = MinPlus()
BOOLEAN = BooleanSemiring()
LOG_PROB = LogProbSemiring()
