"""`TropicalMatrix`: an ergonomic wrapper over the raw max-plus kernels.

The LTDP hot paths operate on bare ``numpy`` arrays for speed; this
wrapper exists for the public API, the examples, and the tests, where
``A @ B``, ``A @ v``, ``A.rank_one`` read far better than kernel calls.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import DimensionError
from repro.semiring.rank import (
    factor_rank_upper_bound,
    is_rank_one,
    rank_one_factorization,
)
from repro.semiring.tropical import (
    NEG_INF,
    as_tropical_matrix,
    as_tropical_vector,
    predecessor_product,
    tropical_matmat,
    tropical_matvec,
    tropical_matrix_power,
)

__all__ = ["TropicalMatrix", "identity_matrix", "zero_matrix"]


def identity_matrix(n: int) -> "TropicalMatrix":
    """The tropical identity: 0 on the diagonal, -inf elsewhere."""
    data = np.full((n, n), NEG_INF)
    np.fill_diagonal(data, 0.0)
    return TropicalMatrix(data)


def zero_matrix(n: int, m: int | None = None) -> "TropicalMatrix":
    """The tropical zero (annihilator) matrix: all entries -inf."""
    return TropicalMatrix(np.full((n, m if m is not None else n), NEG_INF))


class TropicalMatrix:
    """An immutable matrix over the (max, +) semiring.

    Supports ``A @ B`` (tropical matrix product), ``A @ v`` (tropical
    matrix-vector product), ``A.star(v)`` (predecessor product ``A ⋆ v``),
    ``A ** k`` (tropical power) and rank queries.
    """

    __slots__ = ("_data",)

    def __init__(self, data) -> None:
        arr = as_tropical_matrix(data, copy=True)
        arr.setflags(write=False)
        self._data = arr

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying read-only float64 array."""
        return self._data

    @property
    def shape(self) -> tuple[int, int]:
        return self._data.shape  # type: ignore[return-value]

    @property
    def T(self) -> "TropicalMatrix":
        return TropicalMatrix(self._data.T)

    # ------------------------------------------------------------------
    def __matmul__(
        self, other: Union["TropicalMatrix", np.ndarray]
    ) -> Union["TropicalMatrix", np.ndarray]:
        if isinstance(other, TropicalMatrix):
            return TropicalMatrix(tropical_matmat(self._data, other._data))
        arr = np.asarray(other, dtype=np.float64)
        if arr.ndim == 1:
            return tropical_matvec(self._data, arr)
        if arr.ndim == 2:
            return TropicalMatrix(tropical_matmat(self._data, arr))
        raise DimensionError(f"cannot multiply by array of shape {arr.shape}")

    def __pow__(self, k: int) -> "TropicalMatrix":
        return TropicalMatrix(tropical_matrix_power(self._data, k))

    def star(self, v: np.ndarray) -> np.ndarray:
        """Predecessor product ``A ⋆ v`` (arg-max indices, paper §3)."""
        return predecessor_product(self._data, as_tropical_vector(v))

    def scale(self, c: float) -> "TropicalMatrix":
        """Tropical scalar multiple ``A ⊗ c`` — adds ``c`` to every finite entry."""
        out = self._data.copy()
        finite = np.isfinite(out)
        out[finite] += c
        return TropicalMatrix(out)

    # ------------------------------------------------------------------
    def __getitem__(self, idx):
        return self._data[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TropicalMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(
            np.array_equal(self._data, other._data)
        )

    def __hash__(self) -> int:
        return hash((self.shape, self._data.tobytes()))

    def __repr__(self) -> str:
        return f"TropicalMatrix(shape={self.shape})"

    # ------------------------------------------------------------------
    def is_rank_one(self, *, tol: float = 0.0) -> bool:
        """Exact factor-rank-≤-1 test (paper §2 "Matrix Rank")."""
        return is_rank_one(self._data, tol=tol)

    def rank_one_factors(self, *, tol: float = 0.0):
        """``(c, r)`` with ``A = c ⨂ rᵀ``, or ``None`` if rank > 1."""
        return rank_one_factorization(self._data, tol=tol)

    def rank_upper_bound(self, *, tol: float = 0.0) -> int:
        """Cheap upper bound on the factor rank (distinct column directions)."""
        return factor_rank_upper_bound(self._data, tol=tol)

    def is_non_trivial(self) -> bool:
        """True when every row has a finite entry (paper §4.5 non-triviality)."""
        return bool(np.isfinite(self._data).any(axis=1).all())
